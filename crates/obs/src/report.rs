//! Human-readable reports for the what-if engine: single predictions,
//! predicted-vs-actual validation, and Coz-style per-layer
//! virtual-speedup sweeps.

use crate::critical::{Layer, LAYERS};
use crate::record::ObsData;
use crate::whatif::{predict, Intervention, Prediction};

/// Render one prediction.
pub fn render_prediction(iv: &Intervention, p: &Prediction) -> String {
    let us = |ns: u64| ns as f64 / 1000.0;
    let mut o = String::new();
    o.push_str(&format!("intervention: {}\n", iv.describe()));
    o.push_str(&format!(
        "recorded makespan:  {:>14.3} us\n",
        us(p.baseline_ns)
    ));
    o.push_str(&format!(
        "predicted makespan: {:>14.3} us  ({:+.3} us, speedup x{:.4})\n",
        us(p.predicted_ns),
        p.delta_ns() as f64 / 1000.0,
        p.speedup()
    ));
    o
}

/// Render a prediction against the ground-truth makespan of an actual
/// re-run under the equivalent real configuration.
pub fn render_validation(iv: &Intervention, p: &Prediction, actual_ns: u64) -> String {
    let us = |ns: u64| ns as f64 / 1000.0;
    let err_ns = p.predicted_ns as i64 - actual_ns as i64;
    let err_pct = if actual_ns > 0 {
        100.0 * err_ns as f64 / actual_ns as f64
    } else {
        0.0
    };
    let mut o = render_prediction(iv, p);
    o.push_str(&format!("actual makespan:    {:>14.3} us\n", us(actual_ns)));
    o.push_str(&format!(
        "prediction error:   {err_ns:+} ns ({err_pct:+.4}%)\n"
    ));
    o
}

/// One row of a virtual-speedup sweep.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepRow {
    /// The layer virtually sped up.
    pub layer: Layer,
    /// Virtual speedup percent applied (durations × (1 − pct/100)).
    pub pct: f64,
    /// Predicted makespan (`None` when the replay refused, e.g. a
    /// structural divergence under this scaling).
    pub predicted_ns: Option<u64>,
}

/// Coz-style causal profile: predict the makespan with each layer's
/// durations virtually reduced by each of `pcts` percent. `Blocked` is
/// derived waiting and is skipped.
pub fn speedup_sweep(data: &ObsData, pcts: &[f64]) -> Vec<SweepRow> {
    let mut rows = Vec::new();
    for &layer in LAYERS.iter().filter(|&&l| l != Layer::Blocked) {
        for &pct in pcts {
            let iv = Intervention::ScaleLayer {
                layer,
                factor: 1.0 - pct / 100.0,
            };
            rows.push(SweepRow {
                layer,
                pct,
                predicted_ns: predict(data, &iv).ok().map(|p| p.predicted_ns),
            });
        }
    }
    rows
}

/// Render a sweep as a table: one line per layer, one column per
/// percentage, each cell the predicted makespan change in percent.
pub fn render_sweep(data: &ObsData, rows: &[SweepRow]) -> String {
    let baseline = data.makespan_ns();
    let mut pcts: Vec<f64> = rows.iter().map(|r| r.pct).collect();
    pcts.sort_by(|a, b| a.partial_cmp(b).unwrap());
    pcts.dedup();
    let mut o = String::new();
    o.push_str(&format!(
        "virtual-speedup sweep (baseline {:.3} us); cells: predicted makespan change\n",
        baseline as f64 / 1000.0
    ));
    o.push_str(&format!("  {:<9}", "layer"));
    for p in &pcts {
        o.push_str(&format!(" {:>9}", format!("-{p}%")));
    }
    o.push('\n');
    for &layer in LAYERS.iter().filter(|&&l| l != Layer::Blocked) {
        let layer_rows: Vec<&SweepRow> = rows.iter().filter(|r| r.layer == layer).collect();
        if layer_rows.is_empty() {
            continue;
        }
        o.push_str(&format!("  {:<9}", layer.label()));
        for p in &pcts {
            let cell = layer_rows
                .iter()
                .find(|r| r.pct == *p)
                .and_then(|r| r.predicted_ns);
            match cell {
                Some(ns) if baseline > 0 => {
                    let change = 100.0 * (ns as f64 - baseline as f64) / baseline as f64;
                    o.push_str(&format!(" {change:>8.2}%"));
                }
                Some(_) => o.push_str(&format!(" {:>9}", "-")),
                None => o.push_str(&format!(" {:>9}", "n/a")),
            }
        }
        o.push('\n');
    }
    o.push_str(
        "(a layer whose column barely moves is off the critical path; spending\n effort there cannot speed the run up — the Coz argument, applied to spans)\n",
    );
    o
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_reports_zero_error_when_exact() {
        let p = Prediction {
            baseline_ns: 1000,
            predicted_ns: 900,
            per_rank_finish_ns: vec![900],
        };
        let text = render_validation(&Intervention::NoiseOff, &p, 900);
        assert!(text.contains("prediction error:   +0 ns"), "{text}");
    }

    #[test]
    fn sweep_rows_cover_every_scalable_layer() {
        let data = ObsData::default();
        let rows = speedup_sweep(&data, &[20.0]);
        assert_eq!(rows.len(), LAYERS.len() - 1);
        assert!(rows.iter().all(|r| r.layer != Layer::Blocked));
        // Empty recording: every prediction refused, rendered as n/a.
        let text = render_sweep(&data, &rows);
        assert!(text.contains("n/a"));
    }
}
