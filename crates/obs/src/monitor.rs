//! Online health monitor: periodic in-run snapshots, deterministic
//! anomaly detectors, and a live [`HealthView`] — the sensing half of
//! the paper's adaptive loop.
//!
//! A [`Monitor`] rides the deterministic event queue: the world pops a
//! snapshot timer event every `interval_ns` of *simulated* time and
//! feeds the monitor a [`SnapshotInput`] assembled from state the
//! simulation maintains anyway (per-rank progress watermarks and
//! posted/unexpected queue depths, per-link utilization, in-flight
//! bytes, retransmit/ack counters). Four typed detectors run over
//! consecutive snapshots, entirely in integer arithmetic, so the alert
//! stream is a pure function of the event stream — byte-identical at
//! any worker-thread count:
//!
//! * **straggler** — once a configurable quorum of ranks has finished,
//!   a rank still unfinished past `factor ×` the quorum-percentile
//!   finish watermark is lagging its peers anomalously. Keying the lag
//!   off the peers' *finish* watermarks (not raw busy time) keeps
//!   legitimately-waiting leaves of a broadcast tree from ever firing
//!   on a clean run.
//! * **hot link** — a link whose utilization EWMA holds more than a
//!   threshold share of its link class (NIC-tx vs NIC-tx, backbone vs
//!   backbone) for K consecutive snapshots. Shares within a class make
//!   a degraded link stand out while a uniformly saturated fabric
//!   (every NIC busy in a pipelined broadcast) stays quiet.
//! * **retransmit storm** — the reliability layer's retransmit counter
//!   jumping by more than a threshold within one snapshot interval.
//! * **progress flatline** — a softer, earlier signal than the
//!   watchdog: several consecutive snapshots in which no rank finished,
//!   no busy time accrued, no bytes moved, and the network is empty,
//!   while ranks remain unfinished.
//!
//! Every alert is latched (one per subject per sustained episode) and
//! re-armed when the condition clears, so the stream stays bounded and
//! readable. Alerts flow three ways: into the attached recorder (Chrome
//! trace + flight ring), into the shared [`HealthView`] that collective
//! programs can query mid-run, and into the final [`HealthReport`]
//! exported as the dependency-free `adapt-obs-health-v1` JSON artifact
//! ([`health_json`], validated by `obs-validate`).

use std::sync::{Arc, Mutex};

/// Format tag written into (and required from) every health artifact.
pub const HEALTH_FORMAT: &str = "adapt-obs-health-v1";

/// Alerts kept verbatim in the report; later ones are counted but
/// dropped (`HealthReport::dropped_alerts`) so a pathological run
/// cannot grow the artifact without bound.
pub const MAX_REPORT_ALERTS: usize = 1024;

/// What a detector fired on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlertKind {
    /// A rank lagging the quorum finish watermark by the factor.
    Straggler,
    /// A link holding an outsized utilization share of its class.
    HotLink,
    /// Retransmits spiking within one snapshot interval.
    RetransmitStorm,
    /// Nothing progressed for several consecutive snapshots.
    ProgressFlatline,
}

impl AlertKind {
    /// Every kind, in canonical index order (the order of the `counts`
    /// object in the health artifact).
    pub const ALL: [AlertKind; 4] = [
        AlertKind::Straggler,
        AlertKind::HotLink,
        AlertKind::RetransmitStorm,
        AlertKind::ProgressFlatline,
    ];

    /// Position in [`AlertKind::ALL`].
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Stable lowercase label (artifact field name / trace event name).
    pub fn label(&self) -> &'static str {
        match self {
            AlertKind::Straggler => "straggler",
            AlertKind::HotLink => "hot_link",
            AlertKind::RetransmitStorm => "retransmit_storm",
            AlertKind::ProgressFlatline => "progress_flatline",
        }
    }

    /// Parse a stable label back into the kind.
    pub fn from_label(s: &str) -> Option<AlertKind> {
        AlertKind::ALL.iter().copied().find(|k| k.label() == s)
    }
}

/// One structured alert. `subject` is a rank for [`AlertKind::
/// Straggler`], a link id for [`AlertKind::HotLink`], and zero for the
/// global kinds. `value`/`threshold` carry the measurement that fired
/// (sim-time ns for stragglers/flatlines, permille share for hot links,
/// a retransmit delta for storms).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HealthAlert {
    /// Which detector fired.
    pub kind: AlertKind,
    /// Snapshot instant the detector fired at (ns).
    pub t_ns: u64,
    /// Rank or link id (kind-dependent; zero for global kinds).
    pub subject: u32,
    /// The measured value that crossed the threshold.
    pub value: u64,
    /// The threshold it crossed.
    pub threshold: u64,
}

/// Detector thresholds. All ratios are permille so the detectors stay
/// in integer arithmetic end to end.
#[derive(Clone, Copy, Debug)]
pub struct MonitorConfig {
    /// Snapshot interval in simulated nanoseconds (must be positive).
    pub interval_ns: u64,
    /// Straggler: fraction of ranks (permille) that must have finished
    /// before the detector arms.
    pub straggler_quorum_pm: u64,
    /// Straggler: fire for a still-unfinished rank once the snapshot
    /// time exceeds `factor × ` the quorum-percentile finish watermark.
    pub straggler_factor_pm: u64,
    /// Hot link: EWMA smoothing weight (permille) given to the newest
    /// utilization sample.
    pub ewma_alpha_pm: u64,
    /// Hot link: share of the link class's summed utilization EWMA
    /// (permille) a single link must hold to count as hot.
    pub hot_link_share_pm: u64,
    /// Hot link: consecutive snapshots the share must hold.
    pub hot_link_streak: u32,
    /// Hot link: minimum summed class utilization (permille) for shares
    /// to be meaningful — a near-idle class never flags.
    pub hot_link_min_class_util_pm: u64,
    /// Retransmit storm: retransmits within one interval at or above
    /// this fire.
    pub retransmit_storm_delta: u64,
    /// Flatline: consecutive fully-quiet snapshots before firing.
    pub flatline_streak: u32,
}

impl MonitorConfig {
    /// Defaults tuned so a clean run fires nothing (see the detector
    /// tests and the CI obs-smoke monitor step).
    pub fn new(interval_ns: u64) -> MonitorConfig {
        MonitorConfig {
            interval_ns,
            straggler_quorum_pm: 900,
            straggler_factor_pm: 2000,
            ewma_alpha_pm: 500,
            hot_link_share_pm: 850,
            hot_link_streak: 4,
            hot_link_min_class_util_pm: 200,
            retransmit_storm_delta: 16,
            flatline_streak: 3,
        }
    }
}

/// One snapshot of world state, assembled by the world at a snapshot
/// timer event. Plain integers only — the monitor never touches
/// simulator types.
pub struct SnapshotInput<'a> {
    /// Snapshot instant (ns).
    pub t_ns: u64,
    /// Per-rank pure-CPU progress watermark (busy time accrued, ns).
    pub progress_ns: &'a [u64],
    /// Per-rank finish watermark (`None` while the rank runs).
    pub finished_at_ns: &'a [Option<u64>],
    /// Per-rank posted-receive queue depth.
    pub posted: &'a [u32],
    /// Per-rank unexpected-queue depth (eager + RTS).
    pub unexp: &'a [u32],
    /// Per-link instantaneous utilization in permille (0..=1000).
    pub link_util_pm: &'a [u32],
    /// Bytes injected into the network but not yet delivered or dropped.
    pub in_flight_bytes: u64,
    /// Flows currently in the network.
    pub active_flows: u64,
    /// Cumulative delivered bytes.
    pub delivered_bytes: u64,
    /// Cumulative reliability-layer retransmits.
    pub retransmits: u64,
    /// Cumulative reliability-layer acks.
    pub acks: u64,
}

/// Final health record of one monitored run: everything the CLI prints,
/// the artifact serializes, and the golden fixtures pin.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HealthReport {
    /// Snapshot interval (ns).
    pub interval_ns: u64,
    /// Ranks in the job.
    pub nranks: u32,
    /// Links in the fabric.
    pub nlinks: u32,
    /// Snapshots taken.
    pub snapshots: u64,
    /// Last snapshot instant (ns; zero when none fired).
    pub last_t_ns: u64,
    /// Total alerts per kind, indexed by [`AlertKind::index`].
    pub counts: [u64; 4],
    /// The alert stream (first [`MAX_REPORT_ALERTS`]), with resolved
    /// human subjects ("rank 3", "L7 node1/nic-tx").
    pub alerts: Vec<(HealthAlert, String)>,
    /// Alerts beyond the cap (counted, not kept).
    pub dropped_alerts: u64,
}

impl HealthReport {
    /// Total alerts across all kinds.
    pub fn total_alerts(&self) -> u64 {
        self.counts.iter().sum()
    }
}

/// Live view of monitor state, shared between the in-run [`Monitor`]
/// and any code holding a clone — collective programs query it mid-run
/// (the sensing input of the adaptive loop). All methods take the lock
/// briefly; the world is single-threaded per run, so there is never
/// contention.
#[derive(Clone)]
pub struct HealthView {
    shared: Arc<Mutex<HealthState>>,
}

impl HealthView {
    /// Snapshots taken so far.
    pub fn snapshots(&self) -> u64 {
        self.shared.lock().unwrap().snapshots
    }

    /// Total alerts fired so far.
    pub fn total_alerts(&self) -> u64 {
        self.shared.lock().unwrap().counts.iter().sum()
    }

    /// Alerts of one kind fired so far.
    pub fn count(&self, kind: AlertKind) -> u64 {
        self.shared.lock().unwrap().counts[kind.index()]
    }

    /// Is this rank currently flagged as a straggler?
    pub fn is_straggler(&self, rank: u32) -> bool {
        let s = self.shared.lock().unwrap();
        s.straggler_latched.get(rank as usize).copied() == Some(true)
    }

    /// Link ids currently flagged hot, ascending.
    pub fn hot_links(&self) -> Vec<u32> {
        let s = self.shared.lock().unwrap();
        (0..s.hot_latched.len() as u32)
            .filter(|&l| s.hot_latched[l as usize])
            .collect()
    }

    /// The most recent alert, if any fired yet.
    pub fn last_alert(&self) -> Option<HealthAlert> {
        self.shared.lock().unwrap().alerts.last().map(|&(a, _)| a)
    }
}

/// Shared monitor state behind the [`HealthView`] lock.
#[derive(Default)]
struct HealthState {
    snapshots: u64,
    last_t_ns: u64,
    counts: [u64; 4],
    alerts: Vec<(HealthAlert, String)>,
    dropped_alerts: u64,
    straggler_latched: Vec<bool>,
    hot_latched: Vec<bool>,
}

/// The online health monitor; see the module docs. Owned by the world
/// ([`World::with_monitor`]) and fed one [`SnapshotInput`] per snapshot
/// timer event.
///
/// [`World::with_monitor`]: ../adapt/struct.World.html
pub struct Monitor {
    cfg: MonitorConfig,
    shared: Arc<Mutex<HealthState>>,
    nranks: u32,
    /// Resolved per-link topology names (see [`crate::topo_label`]).
    link_labels: Vec<String>,
    /// Per-link class group id (links of one class are compared against
    /// each other by the hot-link detector).
    link_group: Vec<u32>,
    /// Per-link utilization EWMA, permille.
    ewma_pm: Vec<u64>,
    /// Per-link consecutive snapshots above the hot share.
    hot_streak: Vec<u32>,
    /// Scratch: per-group summed EWMA, rebuilt each snapshot.
    group_sum: Vec<u64>,
    /// Scratch: per-group count of ever-active links, rebuilt each
    /// snapshot.
    group_active: Vec<u32>,
    /// Scratch: finish watermarks, sorted each snapshot.
    fins: Vec<u64>,
    /// Alerts fired by the most recent `observe` call.
    fired: Vec<HealthAlert>,
    prev_retransmits: u64,
    storm_latched: bool,
    /// Progress fingerprint of the previous snapshot: (sum busy,
    /// finished count, delivered bytes, retransmits, acks).
    prev_progress: Option<(u64, u32, u64, u64, u64)>,
    flat_streak: u32,
    flat_latched: bool,
}

impl Monitor {
    /// A monitor snapshotting every `interval_ns` of simulated time with
    /// default thresholds.
    pub fn new(interval_ns: u64) -> Monitor {
        Monitor::with_config(MonitorConfig::new(interval_ns))
    }

    /// A monitor with explicit thresholds.
    pub fn with_config(cfg: MonitorConfig) -> Monitor {
        assert!(cfg.interval_ns > 0, "snapshot interval must be positive");
        Monitor {
            cfg,
            shared: Arc::new(Mutex::new(HealthState::default())),
            nranks: 0,
            link_labels: Vec::new(),
            link_group: Vec::new(),
            ewma_pm: Vec::new(),
            hot_streak: Vec::new(),
            group_sum: Vec::new(),
            group_active: Vec::new(),
            fins: Vec::new(),
            fired: Vec::new(),
            prev_retransmits: 0,
            storm_latched: false,
            prev_progress: None,
            flat_streak: 0,
            flat_latched: false,
        }
    }

    /// Snapshot interval (ns).
    pub fn interval_ns(&self) -> u64 {
        self.cfg.interval_ns
    }

    /// A live view onto this monitor's state. Clone freely; hand one to
    /// the collective program that should adapt.
    pub fn view(&self) -> HealthView {
        HealthView {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Describe the job: rank count and raw link class labels (debug
    /// form, e.g. `NicTx(3)`); the monitor resolves them to topology
    /// names and derives the hot-link class groups. Called once by the
    /// world before the first snapshot.
    pub fn meta(&mut self, nranks: u32, link_labels: &[String]) {
        self.nranks = nranks;
        self.link_labels = link_labels.iter().map(|l| crate::topo_label(l)).collect();
        // Group key: the class part of the topology name ("nic-tx",
        // "backbone", ...). Group ids are assigned in first-seen link
        // order, which is deterministic.
        let mut groups: Vec<&str> = Vec::new();
        self.link_group = self
            .link_labels
            .iter()
            .map(|label| {
                let class = label.rsplit('/').next().unwrap_or(label);
                match groups.iter().position(|g| *g == class) {
                    Some(i) => i as u32,
                    None => {
                        groups.push(class);
                        (groups.len() - 1) as u32
                    }
                }
            })
            .collect();
        let nlinks = link_labels.len();
        self.ewma_pm = vec![0; nlinks];
        self.hot_streak = vec![0; nlinks];
        self.group_sum = vec![0; groups.len()];
        self.group_active = vec![0; groups.len()];
        let mut s = self.shared.lock().unwrap();
        s.straggler_latched = vec![false; nranks as usize];
        s.hot_latched = vec![false; nlinks];
    }

    /// Ingest one snapshot and run every detector. Returns the alerts
    /// fired by *this* snapshot, in deterministic order (stragglers by
    /// rank, hot links by link id, then storm, then flatline).
    pub fn observe(&mut self, input: &SnapshotInput<'_>) -> &[HealthAlert] {
        self.fired.clear();
        let nranks = self.nranks as usize;
        debug_assert_eq!(input.progress_ns.len(), nranks);
        debug_assert_eq!(input.finished_at_ns.len(), nranks);

        let finished = input.finished_at_ns.iter().flatten().count();
        self.detect_stragglers(input, finished);
        self.detect_hot_links(input);
        self.detect_storm(input);
        self.detect_flatline(input, finished);

        let mut s = self.shared.lock().unwrap();
        s.snapshots += 1;
        s.last_t_ns = input.t_ns;
        for a in &self.fired {
            s.counts[a.kind.index()] += 1;
            match a.kind {
                AlertKind::Straggler => s.straggler_latched[a.subject as usize] = true,
                AlertKind::HotLink => s.hot_latched[a.subject as usize] = true,
                _ => {}
            }
        }
        // Re-arm bookkeeping lives in the detectors; mirror the cleared
        // latches into the shared view.
        for r in 0..nranks {
            if input.finished_at_ns[r].is_some() {
                s.straggler_latched[r] = false;
            }
        }
        for (l, &streak) in self.hot_streak.iter().enumerate() {
            if streak == 0 {
                s.hot_latched[l] = false;
            }
        }
        for a in &self.fired {
            if s.alerts.len() < MAX_REPORT_ALERTS {
                let label = match a.kind {
                    AlertKind::Straggler => format!("rank {}", a.subject),
                    AlertKind::HotLink => {
                        let name = self
                            .link_labels
                            .get(a.subject as usize)
                            .map(String::as_str)
                            .unwrap_or("link");
                        format!("L{} {name}", a.subject)
                    }
                    _ => "world".to_string(),
                };
                s.alerts.push((*a, label));
            } else {
                s.dropped_alerts += 1;
            }
        }
        &self.fired
    }

    /// Straggler: armed once `quorum_pm` of ranks finished; an
    /// unfinished rank fires when `t` exceeds `factor_pm ×` the
    /// quorum-percentile finish watermark. Latched per rank until it
    /// finishes.
    fn detect_stragglers(&mut self, input: &SnapshotInput<'_>, finished: usize) {
        let cfg = &self.cfg;
        let n = self.nranks as u64;
        if n == 0 || (finished as u64) * 1000 < cfg.straggler_quorum_pm * n {
            return;
        }
        self.fins.clear();
        self.fins
            .extend(input.finished_at_ns.iter().flatten().copied());
        self.fins.sort_unstable();
        // The quorum-percentile watermark: the k-th smallest finish,
        // where k = ceil(quorum × nranks). Quorum held, so k ≤ len.
        let k = (cfg.straggler_quorum_pm * n).div_ceil(1000) as usize;
        let watermark = self.fins[k.saturating_sub(1).min(self.fins.len() - 1)];
        let threshold = watermark.saturating_mul(cfg.straggler_factor_pm) / 1000;
        if input.t_ns <= threshold {
            return;
        }
        let latched = {
            let s = self.shared.lock().unwrap();
            s.straggler_latched.clone()
        };
        for (r, is_latched) in latched.iter().enumerate() {
            if input.finished_at_ns[r].is_none() && !is_latched {
                self.fired.push(HealthAlert {
                    kind: AlertKind::Straggler,
                    t_ns: input.t_ns,
                    subject: r as u32,
                    value: input.t_ns,
                    threshold,
                });
            }
        }
    }

    /// Hot link: EWMA share within the link's class above the threshold
    /// for K consecutive snapshots. Latched per link until the streak
    /// breaks.
    fn detect_hot_links(&mut self, input: &SnapshotInput<'_>) {
        let cfg = self.cfg;
        let nlinks = self.ewma_pm.len();
        debug_assert!(input.link_util_pm.len() >= nlinks);
        let alpha = cfg.ewma_alpha_pm.min(1000);
        self.group_sum.iter_mut().for_each(|s| *s = 0);
        self.group_active.iter_mut().for_each(|a| *a = 0);
        // Peers only count once they have ever carried traffic (the
        // EWMA's round-half-up keeps any ever-busy link at ≥1‰
        // forever): early in a run a lone active NIC owns 100% of its
        // class by construction, and paging on a startup transient
        // would make the detector useless.
        for l in 0..nlinks {
            let cur = input.link_util_pm[l].min(1000) as u64;
            let prev = self.ewma_pm[l];
            self.ewma_pm[l] = (alpha * cur + (1000 - alpha) * prev + 500) / 1000;
            let g = self.link_group[l] as usize;
            self.group_sum[g] += self.ewma_pm[l];
            if self.ewma_pm[l] > 0 {
                self.group_active[g] += 1;
            }
        }
        // Classes with a single (ever-active) link — e.g. the backbone,
        // or a lone busy NIC — have no peers to stand out against and
        // are skipped.
        for l in 0..nlinks {
            let g = self.link_group[l] as usize;
            let peers = self.group_active[g] as usize;
            let sum = self.group_sum[g];
            let share_pm = (self.ewma_pm[l] * 1000).checked_div(sum).unwrap_or(0);
            let hot = peers >= 2
                && sum >= cfg.hot_link_min_class_util_pm
                && share_pm >= cfg.hot_link_share_pm;
            if hot {
                self.hot_streak[l] += 1;
                let latched = self.shared.lock().unwrap().hot_latched[l];
                if self.hot_streak[l] >= cfg.hot_link_streak && !latched {
                    self.fired.push(HealthAlert {
                        kind: AlertKind::HotLink,
                        t_ns: input.t_ns,
                        subject: l as u32,
                        value: share_pm,
                        threshold: cfg.hot_link_share_pm,
                    });
                }
            } else {
                self.hot_streak[l] = 0;
            }
        }
    }

    /// Retransmit storm: the cumulative retransmit counter jumping by at
    /// least the configured delta within one interval. Latched while the
    /// storm sustains; re-arms after one calm interval.
    fn detect_storm(&mut self, input: &SnapshotInput<'_>) {
        let delta = input.retransmits.saturating_sub(self.prev_retransmits);
        self.prev_retransmits = input.retransmits;
        if delta >= self.cfg.retransmit_storm_delta {
            if !self.storm_latched {
                self.fired.push(HealthAlert {
                    kind: AlertKind::RetransmitStorm,
                    t_ns: input.t_ns,
                    subject: 0,
                    value: delta,
                    threshold: self.cfg.retransmit_storm_delta,
                });
            }
            self.storm_latched = true;
        } else {
            self.storm_latched = false;
        }
    }

    /// Flatline: `flatline_streak` consecutive snapshots with an
    /// unchanged progress fingerprint, an empty network, and unfinished
    /// ranks. Fires once per episode.
    fn detect_flatline(&mut self, input: &SnapshotInput<'_>, finished: usize) {
        let fp = (
            input.progress_ns.iter().sum::<u64>(),
            finished as u32,
            input.delivered_bytes,
            input.retransmits,
            input.acks,
        );
        let all_finished = finished == self.nranks as usize;
        let flat = !all_finished
            && input.active_flows == 0
            && input.in_flight_bytes == 0
            && self.prev_progress == Some(fp);
        self.prev_progress = Some(fp);
        if flat {
            self.flat_streak += 1;
            if self.flat_streak >= self.cfg.flatline_streak && !self.flat_latched {
                self.fired.push(HealthAlert {
                    kind: AlertKind::ProgressFlatline,
                    t_ns: input.t_ns,
                    subject: 0,
                    value: self.flat_streak as u64 * self.cfg.interval_ns,
                    threshold: self.cfg.flatline_streak as u64 * self.cfg.interval_ns,
                });
                self.flat_latched = true;
            }
        } else {
            self.flat_streak = 0;
            self.flat_latched = false;
        }
    }

    /// Consume the monitor into its final report.
    pub fn into_report(self) -> HealthReport {
        let nlinks = self.link_labels.len() as u32;
        let s = self.shared.lock().unwrap();
        HealthReport {
            interval_ns: self.cfg.interval_ns,
            nranks: self.nranks,
            nlinks,
            snapshots: s.snapshots,
            last_t_ns: s.last_t_ns,
            counts: s.counts,
            alerts: s.alerts.clone(),
            dropped_alerts: s.dropped_alerts,
        }
    }
}

/// Serialize a health report as the `adapt-obs-health-v1` artifact.
/// Hand-rolled with a fixed key order, so the bytes are a pure function
/// of the report — the thread-count invariance tests compare these
/// strings directly.
pub fn health_json(r: &HealthReport) -> String {
    use std::fmt::Write;
    let mut o = String::with_capacity(1024);
    let _ = write!(
        o,
        "{{\"format\": \"{HEALTH_FORMAT}\",\n\"interval_ns\": {},\n\"nranks\": {},\n\
         \"nlinks\": {},\n\"snapshots\": {},\n\"last_t_ns\": {},\n",
        r.interval_ns, r.nranks, r.nlinks, r.snapshots, r.last_t_ns
    );
    o.push_str("\"counts\": {");
    for (i, k) in AlertKind::ALL.iter().enumerate() {
        if i > 0 {
            o.push_str(", ");
        }
        let _ = write!(o, "\"{}\": {}", k.label(), r.counts[k.index()]);
    }
    o.push_str("},\n\"alerts\": [");
    for (i, (a, label)) in r.alerts.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        let _ = write!(
            o,
            "\n{{\"kind\": \"{}\", \"t_ns\": {}, \"subject\": {}, \"label\": \"{}\", \
             \"value\": {}, \"threshold\": {}}}",
            a.kind.label(),
            a.t_ns,
            a.subject,
            crate::chrome::esc(label),
            a.value,
            a.threshold
        );
    }
    let _ = write!(o, "],\n\"dropped_alerts\": {}\n}}\n", r.dropped_alerts);
    o
}

/// One-screen human rendering of a health report (the CLI's final
/// health summary).
pub fn health_report_text(r: &HealthReport) -> String {
    use std::fmt::Write;
    let mut o = String::new();
    let _ = writeln!(
        o,
        "  health: {} snapshots every {}ns, {} alerts",
        r.snapshots,
        r.interval_ns,
        r.total_alerts()
    );
    if r.total_alerts() > 0 {
        let mut parts: Vec<String> = Vec::new();
        for k in AlertKind::ALL {
            if r.counts[k.index()] > 0 {
                parts.push(format!("{}={}", k.label(), r.counts[k.index()]));
            }
        }
        let _ = writeln!(o, "    by kind: {}", parts.join(" "));
        for (a, label) in r.alerts.iter().take(8) {
            let _ = writeln!(
                o,
                "    {:>12}ns  {:<17} {:<22} value={} threshold={}",
                a.t_ns,
                a.kind.label(),
                label,
                a.value,
                a.threshold
            );
        }
        if r.alerts.len() > 8 {
            let _ = writeln!(o, "    ... {} more", r.alerts.len() - 8);
        }
    }
    o
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Feed one synthetic snapshot to `m` and return fired alerts.
    #[allow(clippy::too_many_arguments)]
    fn snap(
        m: &mut Monitor,
        t_ns: u64,
        progress: &[u64],
        finished: &[Option<u64>],
        util_pm: &[u32],
        active_flows: u64,
        delivered: u64,
        retrans: u64,
    ) -> Vec<HealthAlert> {
        let posted = vec![0u32; progress.len()];
        let unexp = vec![0u32; progress.len()];
        m.observe(&SnapshotInput {
            t_ns,
            progress_ns: progress,
            finished_at_ns: finished,
            posted: &posted,
            unexp: &unexp,
            link_util_pm: util_pm,
            in_flight_bytes: if active_flows > 0 { 1 } else { 0 },
            active_flows,
            delivered_bytes: delivered,
            retransmits: retrans,
            acks: 0,
        })
        .to_vec()
    }

    fn two_nic_monitor(nranks: u32) -> Monitor {
        let mut m = Monitor::new(1000);
        m.meta(nranks, &["NicTx(0)".to_string(), "NicTx(1)".to_string()]);
        m
    }

    #[test]
    fn straggler_fires_for_the_lagging_rank_only() {
        let fin = [Some(100), Some(110), Some(120), None];
        // With the default 90% quorum, 4 ranks need all 4 finished before
        // the detector arms; drop the quorum to 75% so 3 finishers arm it.
        let mut cfg = MonitorConfig::new(1000);
        cfg.straggler_quorum_pm = 750;
        let mut m2 = Monitor::with_config(cfg);
        m2.meta(4, &["NicTx(0)".to_string(), "NicTx(1)".to_string()]);
        // Watermark = 3rd smallest finish (ceil(0.75*4)=3) = 120;
        // threshold = 240. Below it: nothing.
        let a = snap(&mut m2, 200, &[50, 50, 50, 0], &fin, &[0, 0], 1, 10, 0);
        assert!(a.is_empty(), "below threshold: {a:?}");
        // Past it: rank 3 fires, exactly once.
        let a = snap(&mut m2, 300, &[50, 50, 50, 0], &fin, &[0, 0], 1, 10, 0);
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].kind, AlertKind::Straggler);
        assert_eq!(a[0].subject, 3);
        assert!(m2.view().is_straggler(3));
        assert!(!m2.view().is_straggler(0));
        // Latched: no repeat while still unfinished.
        let a = snap(&mut m2, 400, &[50, 50, 50, 0], &fin, &[0, 0], 1, 10, 0);
        assert!(a.is_empty(), "straggler must latch: {a:?}");
        // Rank finishes: latch clears.
        let fin_done = [Some(100), Some(110), Some(120), Some(450)];
        snap(&mut m2, 500, &[50; 4], &fin_done, &[0, 0], 0, 10, 0);
        assert!(!m2.view().is_straggler(3));
    }

    #[test]
    fn hot_link_needs_a_sustained_outsized_share() {
        let mut m = two_nic_monitor(2);
        let fin = [None, None];
        // Balanced load: both NICs equally busy -> shares 500, never hot.
        for i in 0..10 {
            let a = snap(&mut m, 1000 * (i + 1), &[0, 0], &fin, &[800, 800], 1, 0, 0);
            assert!(a.is_empty(), "balanced load must stay quiet: {a:?}");
        }
        // One NIC saturated, the peer idle: hot after the streak (4).
        let mut fired = Vec::new();
        for i in 10..20 {
            fired.extend(snap(
                &mut m,
                1000 * (i + 1),
                &[0, 0],
                &fin,
                &[1000, 0],
                1,
                0,
                0,
            ));
        }
        assert_eq!(fired.len(), 1, "one latched alert: {fired:?}");
        assert_eq!(fired[0].kind, AlertKind::HotLink);
        assert_eq!(fired[0].subject, 0);
        assert_eq!(m.view().hot_links(), vec![0]);
        // Load rebalances: streak breaks, latch re-arms, and a second
        // sustained episode fires again.
        for i in 20..26 {
            snap(&mut m, 1000 * (i + 1), &[0, 0], &fin, &[500, 500], 1, 0, 0);
        }
        assert!(m.view().hot_links().is_empty());
        let mut refired = Vec::new();
        for i in 26..36 {
            refired.extend(snap(
                &mut m,
                1000 * (i + 1),
                &[0, 0],
                &fin,
                &[0, 1000],
                1,
                0,
                0,
            ));
        }
        assert_eq!(refired.len(), 1);
        assert_eq!(refired[0].subject, 1);
    }

    #[test]
    fn single_link_classes_never_flag() {
        let mut m = Monitor::new(1000);
        m.meta(2, &["Backbone".to_string()]);
        let fin = [None, None];
        for i in 0..10 {
            let a = snap(&mut m, 1000 * (i + 1), &[0, 0], &fin, &[1000], 1, 0, 0);
            assert!(a.is_empty(), "peerless link must stay quiet: {a:?}");
        }
    }

    #[test]
    fn retransmit_storm_fires_on_the_delta_and_rearms() {
        let mut m = two_nic_monitor(2);
        let fin = [None, None];
        let a = snap(&mut m, 1000, &[0, 0], &fin, &[0, 0], 1, 0, 5);
        assert!(a.is_empty(), "5 retransmits in one interval is calm");
        let a = snap(&mut m, 2000, &[0, 0], &fin, &[0, 0], 1, 0, 40);
        assert_eq!(a.len(), 1, "35 in one interval is a storm: {a:?}");
        assert_eq!(a[0].kind, AlertKind::RetransmitStorm);
        assert_eq!(a[0].value, 35);
        // Sustained storm stays latched.
        let a = snap(&mut m, 3000, &[0, 0], &fin, &[0, 0], 1, 0, 80);
        assert!(a.is_empty(), "latched: {a:?}");
        // Calm interval re-arms; a new storm fires again.
        snap(&mut m, 4000, &[0, 0], &fin, &[0, 0], 1, 0, 81);
        let a = snap(&mut m, 5000, &[0, 0], &fin, &[0, 0], 1, 0, 140);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn flatline_needs_consecutive_quiet_snapshots_and_an_empty_network() {
        let mut m = two_nic_monitor(2);
        let fin = [Some(10), None];
        // Identical fingerprints, but flows in flight: not flat.
        for i in 0..6 {
            let a = snap(&mut m, 1000 * (i + 1), &[5, 5], &fin, &[0, 0], 1, 100, 0);
            assert!(a.is_empty(), "in-flight data is progress: {a:?}");
        }
        // Network empty and nothing changes: streak 3 fires once.
        let mut fired = Vec::new();
        for i in 6..12 {
            fired.extend(snap(
                &mut m,
                1000 * (i + 1),
                &[5, 5],
                &fin,
                &[0, 0],
                0,
                100,
                0,
            ));
        }
        assert_eq!(fired.len(), 1, "{fired:?}");
        assert_eq!(fired[0].kind, AlertKind::ProgressFlatline);
        // Progress resumes, then stalls again: a second episode fires.
        snap(&mut m, 13_000, &[6, 5], &fin, &[0, 0], 0, 100, 0);
        let mut refired = Vec::new();
        for i in 13..19 {
            refired.extend(snap(
                &mut m,
                1000 * (i + 1),
                &[6, 5],
                &fin,
                &[0, 0],
                0,
                100,
                0,
            ));
        }
        assert_eq!(refired.len(), 1, "{refired:?}");
    }

    #[test]
    fn all_finished_never_flatlines() {
        let mut m = two_nic_monitor(2);
        let fin = [Some(10), Some(20)];
        for i in 0..8 {
            let a = snap(&mut m, 1000 * (i + 1), &[5, 5], &fin, &[0, 0], 0, 100, 0);
            assert!(a.is_empty(), "a finished world is healthy: {a:?}");
        }
    }

    #[test]
    fn health_json_is_stable_and_validates() {
        let fin = [Some(100), Some(110), Some(120), None];
        let mut cfg = MonitorConfig::new(1000);
        cfg.straggler_quorum_pm = 750;
        let mut m2 = Monitor::with_config(cfg);
        m2.meta(4, &["NicTx(0)".to_string(), "NicTx(1)".to_string()]);
        snap(&mut m2, 300, &[50, 50, 50, 0], &fin, &[0, 0], 1, 10, 0);
        let report = m2.into_report();
        assert_eq!(report.total_alerts(), 1);
        let json = health_json(&report);
        let again = health_json(&report);
        assert_eq!(json, again, "serialization must be deterministic");
        let check = crate::validate::validate_health(&json).expect("artifact must validate");
        assert_eq!(check.alerts, 1);
        assert_eq!(check.snapshots, 1);
        assert!(json.contains("\"kind\": \"straggler\""));
        assert!(json.contains("\"label\": \"rank 3\""));
    }

    #[test]
    fn report_caps_alerts_and_counts_the_rest() {
        let mut cfg = MonitorConfig::new(1000);
        cfg.retransmit_storm_delta = 1;
        let mut m = Monitor::with_config(cfg);
        m.meta(2, &["NicTx(0)".to_string(), "NicTx(1)".to_string()]);
        let fin = [None, None];
        // Alternate storm / calm so every other snapshot fires.
        let mut retrans = 0;
        for i in 0..(2 * MAX_REPORT_ALERTS as u64 + 64) {
            if i % 2 == 0 {
                retrans += 10;
            }
            snap(
                &mut m,
                1000 * (i + 1),
                &[0, 0],
                &fin,
                &[0, 0],
                1,
                0,
                retrans,
            );
        }
        let r = m.into_report();
        assert_eq!(r.alerts.len(), MAX_REPORT_ALERTS);
        assert!(r.dropped_alerts > 0);
        assert_eq!(
            r.total_alerts(),
            r.alerts.len() as u64 + r.dropped_alerts,
            "counts cover kept and dropped alerts"
        );
        let json = health_json(&r);
        crate::validate::validate_health(&json).unwrap();
    }

    #[test]
    fn view_is_shared_and_live() {
        let mut m = two_nic_monitor(2);
        let view = m.view();
        assert_eq!(view.snapshots(), 0);
        let fin = [None, None];
        snap(&mut m, 1000, &[0, 0], &fin, &[0, 0], 1, 0, 0);
        assert_eq!(view.snapshots(), 1);
        assert_eq!(view.total_alerts(), 0);
        assert!(view.last_alert().is_none());
    }
}
