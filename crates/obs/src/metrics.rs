//! Flat CSV export of the sampled time-series gauges.
//!
//! One row per sample: `time_ns,metric,index,value`. The rows come out
//! in recording order (time-major, metric order fixed by the sampler),
//! so the file is byte-identical across runs of the same configuration.
//! After the samples, one summary block: per-flow-class duration
//! percentiles (`flow_dur_p50`/`p90`/`p99`, indexed by class) stamped at
//! end-of-run, keeping the time column non-decreasing.

use crate::chrome::fmt_num;
use crate::hist::percentile;
use crate::record::{FlowClass, ObsData};
use std::fmt::Write as _;

/// Header row of the metrics CSV.
pub const CSV_HEADER: &str = "time_ns,metric,index,value";

/// Flow classes in summary-row order; a class's position is its `index`
/// in the `flow_dur_*` rows.
pub const FLOW_CLASSES: [FlowClass; 6] = FlowClass::ALL;

/// Render the recorded gauges as a CSV document.
pub fn metrics_csv(data: &ObsData) -> String {
    // One gauge row is ~32 bytes; the summary block is at most three
    // rows per flow class.
    let cap = CSV_HEADER.len() + 1 + (data.gauges.len() + 3 * FLOW_CLASSES.len()) * 32;
    let mut out = String::with_capacity(cap);
    out.push_str(CSV_HEADER);
    out.push('\n');
    let mut t_end = data.makespan_ns();
    for g in &data.gauges {
        writeln!(
            out,
            "{},{},{},{}",
            g.t_ns,
            g.metric.label(),
            g.index,
            fmt_num(g.value)
        )
        .expect("writing to String cannot fail");
        t_end = t_end.max(g.t_ns);
    }
    // Duration histograms: launch-to-completion per flow class.
    for (index, class) in FLOW_CLASSES.iter().enumerate() {
        let mut durs: Vec<u64> = data
            .flows
            .iter()
            .filter(|f| f.class == *class)
            .filter_map(|f| Some(f.delivered_ns.or(f.drained_ns)? - f.launch_ns))
            .collect();
        durs.sort_unstable();
        for (name, q) in [
            ("flow_dur_p50", 50.0),
            ("flow_dur_p90", 90.0),
            ("flow_dur_p99", 99.0),
        ] {
            // Absent classes emit no rows.
            let Some(v) = percentile(&durs, q) else {
                continue;
            };
            writeln!(out, "{t_end},{name},{index},{}", fmt_num(v as f64))
                .expect("writing to String cannot fail");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{GaugeMetric, GaugeRec, ObsData};

    #[test]
    fn rows_follow_recording_order() {
        let mut data = ObsData::default();
        data.gauges.push(GaugeRec {
            t_ns: 0,
            metric: GaugeMetric::PostedDepth,
            index: 0,
            value: 3.0,
        });
        data.gauges.push(GaugeRec {
            t_ns: 10_000,
            metric: GaugeMetric::LinkUtil,
            index: 7,
            value: 0.125,
        });
        let csv = metrics_csv(&data);
        assert_eq!(
            csv,
            "time_ns,metric,index,value\n0,posted_depth,0,3\n10000,link_util,7,0.125000\n"
        );
        crate::validate::validate_metrics_csv(&csv).unwrap();
    }

    #[test]
    fn flow_duration_percentiles_ride_at_end_of_run() {
        use crate::record::{FlowClass, FlowRec};
        let mut data = ObsData {
            per_rank_finish_ns: vec![1000],
            ..ObsData::default()
        };
        for (i, dur) in [100u64, 200, 300, 400].iter().enumerate() {
            data.flows.push(FlowRec {
                class: FlowClass::Eager,
                msg: Some(i as u64),
                rank: 0,
                token: 0,
                bytes: 64,
                links: vec![0],
                launch_ns: 10,
                drained_ns: Some(10 + dur / 2),
                delivered_ns: Some(10 + dur),
            });
        }
        let csv = metrics_csv(&data);
        let eager = FLOW_CLASSES
            .iter()
            .position(|c| *c == FlowClass::Eager)
            .unwrap();
        // Nearest-rank percentiles of [100,200,300,400], stamped at the
        // makespan so the time column stays non-decreasing.
        assert!(
            csv.contains(&format!("1000,flow_dur_p50,{eager},200\n")),
            "{csv}"
        );
        assert!(csv.contains(&format!("1000,flow_dur_p90,{eager},400\n")));
        assert!(csv.contains(&format!("1000,flow_dur_p99,{eager},400\n")));
        // Absent classes emit no rows.
        assert!(!csv.contains("flow_dur_p50,0,"));
        crate::validate::validate_metrics_csv(&csv).unwrap();
    }

    #[test]
    fn percentile_is_nearest_rank() {
        assert_eq!(percentile(&[5], 50.0), Some(5));
        assert_eq!(percentile(&[1, 2, 3, 4, 5], 50.0), Some(3));
        assert_eq!(percentile(&[1, 2, 3, 4, 5], 99.0), Some(5));
        assert_eq!(percentile(&[1, 2], 10.0), Some(1));
        // The empty case used to panic in `.clamp(1, 0)`; it is now total.
        assert_eq!(percentile(&[], 50.0), None);
    }
}
