//! Flat CSV export of the sampled time-series gauges.
//!
//! One row per sample: `time_ns,metric,index,value`. The rows come out
//! in recording order (time-major, metric order fixed by the sampler),
//! so the file is byte-identical across runs of the same configuration.

use crate::chrome::fmt_num;
use crate::record::ObsData;

/// Header row of the metrics CSV.
pub const CSV_HEADER: &str = "time_ns,metric,index,value";

/// Render the recorded gauges as a CSV document.
pub fn metrics_csv(data: &ObsData) -> String {
    let mut out = String::with_capacity(32 + data.gauges.len() * 32);
    out.push_str(CSV_HEADER);
    out.push('\n');
    for g in &data.gauges {
        out.push_str(&format!(
            "{},{},{},{}\n",
            g.t_ns,
            g.metric.label(),
            g.index,
            fmt_num(g.value)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{GaugeMetric, GaugeRec, ObsData};

    #[test]
    fn rows_follow_recording_order() {
        let mut data = ObsData::default();
        data.gauges.push(GaugeRec {
            t_ns: 0,
            metric: GaugeMetric::PostedDepth,
            index: 0,
            value: 3.0,
        });
        data.gauges.push(GaugeRec {
            t_ns: 10_000,
            metric: GaugeMetric::LinkUtil,
            index: 7,
            value: 0.125,
        });
        let csv = metrics_csv(&data);
        assert_eq!(
            csv,
            "time_ns,metric,index,value\n0,posted_depth,0,3\n10000,link_util,7,0.125000\n"
        );
        crate::validate::validate_metrics_csv(&csv).unwrap();
    }
}
