//! Flat CSV export of the sampled time-series gauges.
//!
//! One row per sample: `time_ns,metric,index,value`. The rows come out
//! in recording order (time-major, metric order fixed by the sampler),
//! so the file is byte-identical across runs of the same configuration.
//! After the samples, one summary block: per-flow-class duration
//! percentiles (`flow_dur_p50`/`p90`/`p99`, indexed by class) stamped at
//! end-of-run, keeping the time column non-decreasing.

use crate::chrome::fmt_num;
use crate::record::{FlowClass, ObsData};

/// Header row of the metrics CSV.
pub const CSV_HEADER: &str = "time_ns,metric,index,value";

/// Flow classes in summary-row order; a class's position is its `index`
/// in the `flow_dur_*` rows.
pub const FLOW_CLASSES: [FlowClass; 6] = [
    FlowClass::Rts,
    FlowClass::Cts,
    FlowClass::Eager,
    FlowClass::Rndv,
    FlowClass::Copy,
    FlowClass::Ack,
];

/// Nearest-rank percentile of a sorted slice.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len();
    let rank = ((q / 100.0 * n as f64).ceil() as usize).clamp(1, n);
    sorted[rank - 1]
}

/// Render the recorded gauges as a CSV document.
pub fn metrics_csv(data: &ObsData) -> String {
    let mut out = String::with_capacity(32 + data.gauges.len() * 32);
    out.push_str(CSV_HEADER);
    out.push('\n');
    let mut t_end = data.makespan_ns();
    for g in &data.gauges {
        out.push_str(&format!(
            "{},{},{},{}\n",
            g.t_ns,
            g.metric.label(),
            g.index,
            fmt_num(g.value)
        ));
        t_end = t_end.max(g.t_ns);
    }
    // Duration histograms: launch-to-completion per flow class.
    for (index, class) in FLOW_CLASSES.iter().enumerate() {
        let mut durs: Vec<u64> = data
            .flows
            .iter()
            .filter(|f| f.class == *class)
            .filter_map(|f| Some(f.delivered_ns.or(f.drained_ns)? - f.launch_ns))
            .collect();
        if durs.is_empty() {
            continue;
        }
        durs.sort_unstable();
        for (name, q) in [
            ("flow_dur_p50", 50.0),
            ("flow_dur_p90", 90.0),
            ("flow_dur_p99", 99.0),
        ] {
            out.push_str(&format!(
                "{t_end},{name},{index},{}\n",
                fmt_num(percentile(&durs, q) as f64)
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{GaugeMetric, GaugeRec, ObsData};

    #[test]
    fn rows_follow_recording_order() {
        let mut data = ObsData::default();
        data.gauges.push(GaugeRec {
            t_ns: 0,
            metric: GaugeMetric::PostedDepth,
            index: 0,
            value: 3.0,
        });
        data.gauges.push(GaugeRec {
            t_ns: 10_000,
            metric: GaugeMetric::LinkUtil,
            index: 7,
            value: 0.125,
        });
        let csv = metrics_csv(&data);
        assert_eq!(
            csv,
            "time_ns,metric,index,value\n0,posted_depth,0,3\n10000,link_util,7,0.125000\n"
        );
        crate::validate::validate_metrics_csv(&csv).unwrap();
    }

    #[test]
    fn flow_duration_percentiles_ride_at_end_of_run() {
        use crate::record::{FlowClass, FlowRec};
        let mut data = ObsData {
            per_rank_finish_ns: vec![1000],
            ..ObsData::default()
        };
        for (i, dur) in [100u64, 200, 300, 400].iter().enumerate() {
            data.flows.push(FlowRec {
                class: FlowClass::Eager,
                msg: Some(i as u64),
                rank: 0,
                token: 0,
                bytes: 64,
                links: vec![0],
                launch_ns: 10,
                drained_ns: Some(10 + dur / 2),
                delivered_ns: Some(10 + dur),
            });
        }
        let csv = metrics_csv(&data);
        let eager = FLOW_CLASSES
            .iter()
            .position(|c| *c == FlowClass::Eager)
            .unwrap();
        // Nearest-rank percentiles of [100,200,300,400], stamped at the
        // makespan so the time column stays non-decreasing.
        assert!(
            csv.contains(&format!("1000,flow_dur_p50,{eager},200\n")),
            "{csv}"
        );
        assert!(csv.contains(&format!("1000,flow_dur_p90,{eager},400\n")));
        assert!(csv.contains(&format!("1000,flow_dur_p99,{eager},400\n")));
        // Absent classes emit no rows.
        assert!(!csv.contains("flow_dur_p50,0,"));
        crate::validate::validate_metrics_csv(&csv).unwrap();
    }

    #[test]
    fn percentile_is_nearest_rank() {
        assert_eq!(percentile(&[5], 50.0), 5);
        assert_eq!(percentile(&[1, 2, 3, 4, 5], 50.0), 3);
        assert_eq!(percentile(&[1, 2, 3, 4, 5], 99.0), 5);
        assert_eq!(percentile(&[1, 2], 10.0), 1);
    }
}
