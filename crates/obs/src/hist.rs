//! Deterministic log-bucketed histograms for bounded-memory telemetry.
//!
//! [`Hist`] is the one aggregation primitive every streaming consumer
//! shares: a fixed-size log-linear (HDR-style) bucket array plus exact
//! integer `count`/`sum`/`min`/`max`. Values below 16 land in exact
//! unit buckets; above that each power-of-two decade is split into 16
//! sub-buckets, bounding the relative quantile error at 1/16 (6.25%)
//! while keeping the footprint a compile-time constant. Everything is
//! integer arithmetic on `u64`, so merging shards or replaying the same
//! event stream in any order yields byte-identical state.

/// log2 of the sub-buckets per power-of-two decade.
const SUB_BITS: u32 = 4;
/// Sub-buckets per decade (16).
const SUB: usize = 1 << SUB_BITS;
/// Total bucket count: 16 exact unit buckets for `v < 16`, then 16
/// sub-buckets for each exponent 4..=63 — `(64 - 4 + 1) * 16 = 976`.
pub const HIST_BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB;

/// Bucket index for a value: exact below `SUB`, log-linear above.
#[inline]
fn bucket_of(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let e = 63 - v.leading_zeros(); // e >= SUB_BITS
    let sub = ((v >> (e - SUB_BITS)) as usize) - SUB; // 0..SUB
    ((e - SUB_BITS + 1) as usize) * SUB + sub
}

/// Lowest value mapping to bucket `i` (the inverse of [`bucket_of`]).
#[inline]
fn bucket_low(i: usize) -> u64 {
    if i < SUB {
        return i as u64;
    }
    let e = (i / SUB) as u32 + SUB_BITS - 1;
    let sub = (i % SUB) as u64;
    (1u64 << e) + (sub << (e - SUB_BITS))
}

/// A mergeable log-bucketed histogram with exact integer summary
/// counters. `O(HIST_BUCKETS)` memory regardless of how many values are
/// recorded; all state is `u64`, so it is deterministic under any
/// recording order and under shard merges.
#[derive(Clone, PartialEq, Eq)]
pub struct Hist {
    counts: Box<[u64; HIST_BUCKETS]>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Hist {
    fn default() -> Self {
        Hist::new()
    }
}

impl Hist {
    /// An empty histogram.
    pub fn new() -> Hist {
        Hist {
            counts: Box::new([0; HIST_BUCKETS]),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one value.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Fold another histogram in, elementwise. Merging is commutative
    /// and associative, so shard order never shows in the result.
    pub fn merge(&mut self, other: &Hist) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += *b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact smallest recorded value.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact largest recorded value.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Integer mean (rounds down).
    pub fn mean(&self) -> Option<u64> {
        (self.count > 0).then(|| self.sum / self.count)
    }

    /// Nearest-rank percentile estimate: walks the cumulative bucket
    /// counts to the bucket holding the target rank and reports that
    /// bucket's lower bound, clamped into the exact `[min, max]` range
    /// (so single-bucket tails report exact values). Relative error is
    /// bounded by the 1/16 sub-bucket width.
    pub fn percentile(&self, q: f64) -> Option<u64> {
        let target = nearest_rank(self.count as usize, q)? as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(bucket_low(i).clamp(self.min, self.max));
            }
        }
        Some(self.max) // unreachable: count > 0 guarantees the walk hits
    }

    /// Occupied buckets as `(lower_bound, count)` pairs, ascending —
    /// the sparse serialization form.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_low(i), c))
    }

    /// Rebuild from the sparse `(lower_bound, count)` form plus exact
    /// counters. Bounds that are not a bucket lower bound are rejected.
    pub fn from_parts(
        buckets: &[(u64, u64)],
        sum: u64,
        min: u64,
        max: u64,
    ) -> Result<Hist, String> {
        let mut h = Hist::new();
        for &(low, c) in buckets {
            let i = bucket_of(low);
            if bucket_low(i) != low {
                return Err(format!("{low} is not a histogram bucket bound"));
            }
            h.counts[i] += c;
            h.count += c;
        }
        h.sum = sum;
        h.min = if h.count > 0 { min } else { u64::MAX };
        h.max = max;
        Ok(h)
    }
}

impl std::fmt::Debug for Hist {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Hist {{ count: {}, sum: {}, min: {:?}, max: {:?} }}",
            self.count,
            self.sum,
            self.min(),
            self.max()
        )
    }
}

/// 1-based nearest rank for percentile `q` of `n` items: `⌈q/100·n⌉`
/// clamped to `1..=n`. `None` when `n == 0` — the total replacement for
/// the old panicking clamp.
pub fn nearest_rank(n: usize, q: f64) -> Option<usize> {
    if n == 0 {
        return None;
    }
    Some(((q / 100.0 * n as f64).ceil() as usize).clamp(1, n))
}

/// Exact nearest-rank percentile over an already-sorted slice. Total:
/// empty input yields `None` instead of the former panic.
pub fn percentile(sorted: &[u64], q: f64) -> Option<u64> {
    nearest_rank(sorted.len(), q).map(|rank| sorted[rank - 1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_mapping_is_monotone_and_inverts() {
        // Exact below 16, and bucket_low is a left inverse everywhere.
        for v in 0..16u64 {
            assert_eq!(bucket_of(v), v as usize);
        }
        let mut vals: Vec<u64> = (0..63u32)
            .flat_map(|e| [1u64 << e, (1u64 << e) + 1, (1u64 << (e + 1)) - 1])
            .collect();
        vals.sort_unstable();
        let mut prev = 0usize;
        for v in vals {
            let b = bucket_of(v);
            assert!(b >= prev, "bucket index regressed at {v}");
            prev = b;
            assert!(b < HIST_BUCKETS);
            let low = bucket_low(b);
            assert_eq!(bucket_of(low), b, "bucket_low not in its own bucket");
            assert!(low <= v, "lower bound above value at {v}");
        }
        assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn relative_error_is_bounded() {
        for v in [17u64, 1000, 123_456, 987_654_321, 1 << 50] {
            let low = bucket_low(bucket_of(v));
            assert!(low <= v && (v - low) as f64 <= v as f64 / 16.0, "{v}");
        }
    }

    #[test]
    fn counters_are_exact_and_percentiles_bounded() {
        let mut h = Hist::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 10_000);
        assert_eq!(h.sum(), 10_000 * 10_001 / 2);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(10_000));
        for q in [50.0, 90.0, 99.0, 100.0] {
            let exact = f64::ceil(q / 100.0 * 10_000.0);
            let got = h.percentile(q).unwrap() as f64;
            assert!(
                got <= exact && got >= exact * (1.0 - 1.0 / 16.0) - 1.0,
                "p{q}: got {got}, exact {exact}"
            );
        }
    }

    #[test]
    fn empty_hist_is_total() {
        let h = Hist::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.percentile(50.0), None);
        assert_eq!(h.nonzero_buckets().count(), 0);
    }

    #[test]
    fn merge_equals_interleaved_recording() {
        let mut a = Hist::new();
        let mut b = Hist::new();
        let mut whole = Hist::new();
        for i in 0..5000u64 {
            let v = (i * 2654435761) % 1_000_003;
            if i % 2 == 0 { &mut a } else { &mut b }.record(v);
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn sparse_round_trip() {
        let mut h = Hist::new();
        for v in [0u64, 3, 17, 900, 1 << 40] {
            h.record(v);
            h.record(v);
        }
        let buckets: Vec<_> = h.nonzero_buckets().collect();
        let back = Hist::from_parts(&buckets, h.sum(), h.min().unwrap(), h.max().unwrap())
            .expect("round trip");
        assert_eq!(back, h);
        assert!(Hist::from_parts(&[(1 << 40 | 1, 1)], 0, 0, 0).is_err());
    }

    #[test]
    fn nearest_rank_percentile_is_total() {
        assert_eq!(percentile(&[], 50.0), None);
        assert_eq!(percentile(&[5], 50.0), Some(5));
        assert_eq!(percentile(&[1, 2, 3, 4, 5], 50.0), Some(3));
        assert_eq!(percentile(&[1, 2, 3, 4, 5], 99.0), Some(5));
        assert_eq!(percentile(&[1, 2], 10.0), Some(1));
    }
}
