//! Bounded-memory streaming telemetry: the [`StreamRecorder`].
//!
//! Where [`MemRecorder`](crate::MemRecorder) stores every probe —
//! memory O(events) — the streaming recorder folds each probe into
//! fixed-size aggregates the moment it fires: per-flow-class duration
//! histograms, per-message-stage latency histograms, a link×time
//! utilization heatmap, and per-rank busy/idle accounting. Resident
//! state is O(ranks + links + histogram buckets) plus the in-flight
//! working set (open messages and occupied network slots), which is
//! bounded by simulation concurrency, never by run length — so
//! recording can stay on for the 10k–100k-rank runs the sharded core
//! targets.
//!
//! Every aggregate is integer arithmetic over the deterministic probe
//! stream, and the sharded core delivers that stream in byte-identical
//! order at every thread count, so the exported [`ObsSummary`] JSON is
//! byte-identical too (`tests/par_determinism.rs` holds this to
//! account).

use crate::flight::{FlightRecorder, FlightSpan};
use crate::hist::{percentile, Hist};
use crate::record::{FlowClass, GaugeMetric, ObsData, ProtoKind, Trigger};
use crate::recorder::{FlowStart, MsgEvent, Recorder};
use adapt_sim::fxhash::FxHashMap;
use std::fmt::Write as _;

/// Columns in the link×time utilization heatmap.
pub const HEAT_COLS: usize = 64;
/// Initial heatmap column width (ns); doubles (folding the columns
/// pairwise) whenever the run outgrows the grid.
const HEAT_BASE_NS: u64 = 1 << 10;

/// Format tag of the summary JSON export.
pub const SUMMARY_FORMAT: &str = "adapt-obs-summary-v1";

/// In-flight message state — lives only between posting and delivery.
#[derive(Clone, Copy, Default)]
struct OpenMsg {
    posted_ns: u64,
    matched_ns: Option<u64>,
    delivered_ns: Option<u64>,
    recv_ready: bool,
    acked: bool,
    retransmits: u64,
}

impl OpenMsg {
    /// Nothing more can happen to this message; its aggregates are final.
    fn settled(&self) -> bool {
        self.delivered_ns.is_some() && self.recv_ready && (self.retransmits == 0 || self.acked)
    }
}

/// Occupied-network-slot state (slots are reused; latest launch owns).
#[derive(Clone)]
struct SlotState {
    class: FlowClass,
    launch_ns: u64,
    bytes: u64,
    links: Vec<u32>,
    drained: bool,
    live: bool,
}

impl Default for SlotState {
    fn default() -> SlotState {
        SlotState {
            class: FlowClass::Rts,
            launch_ns: 0,
            bytes: 0,
            links: Vec::new(),
            drained: false,
            live: false,
        }
    }
}

/// Link×time byte heatmap with a fixed `links × HEAT_COLS` grid. Column
/// width starts at [`HEAT_BASE_NS`] and doubles — folding the existing
/// columns pairwise — whenever a span lands past the grid, so the grid
/// always covers the whole run at fixed memory. Folding depends only on
/// the probe stream, never on wall-clock, so the result is
/// deterministic.
#[derive(Default)]
struct Heatmap {
    // Column width as a power-of-two shift: the per-flow hot path maps
    // times to columns with shifts, never divisions.
    shift: u32,
    // Column-major: cells[col * nlinks + link]. Flows complete in rough
    // time order, so the hot path hammers one ~nlinks-sized column slice
    // that stays cached, instead of scattering across per-link rows.
    cells: Vec<u64>,
    nlinks: usize,
}

impl Heatmap {
    fn init(&mut self, nlinks: usize) {
        self.shift = HEAT_BASE_NS.trailing_zeros();
        self.nlinks = nlinks;
        self.cells = vec![0; nlinks * HEAT_COLS];
    }

    fn width_ns(&self) -> u64 {
        1 << self.shift
    }

    fn fold(&mut self) {
        self.shift += 1;
        let n = self.nlinks;
        for i in 0..HEAT_COLS / 2 {
            for l in 0..n {
                self.cells[i * n + l] = self.cells[2 * i * n + l] + self.cells[(2 * i + 1) * n + l];
            }
        }
        for c in &mut self.cells[(HEAT_COLS / 2) * n..] {
            *c = 0;
        }
    }

    /// Spread `bytes` over the span `[t0, t1)` on every listed link,
    /// prorated per column by integer overlap (remainder to the last
    /// column, so per-link totals stay exact).
    fn add_span(&mut self, links: &[u32], t0: u64, t1: u64, bytes: u64) {
        if bytes == 0 || links.is_empty() || self.cells.is_empty() {
            return;
        }
        let last_ns = t1.max(t0 + 1) - 1;
        while (last_ns >> self.shift) >= HEAT_COLS as u64 {
            self.fold();
        }
        let sh = self.shift;
        let n = self.nlinks;
        let (b0, b1) = ((t0 >> sh) as usize, (last_ns >> sh) as usize);
        if b0 == b1 {
            // Fast path: the span fits one column (the common case once
            // the grid has folded a few times), so no proration.
            let col = &mut self.cells[b0 * n..(b0 + 1) * n];
            for &link in links {
                if let Some(c) = col.get_mut(link as usize) {
                    *c += bytes;
                }
            }
            return;
        }
        // The per-column proration is identical for every link on the
        // path, so compute it once, then sweep column-by-column — each
        // column is one contiguous slice of the col-major grid.
        let dur = t1.saturating_sub(t0);
        let mut portions = [0u64; HEAT_COLS];
        let mut assigned = 0u64;
        for (slot, b) in portions[b0..=b1].iter_mut().zip(b0..) {
            let portion = if b == b1 || dur == 0 {
                bytes - assigned
            } else {
                let lo = ((b as u64) << sh).max(t0);
                let hi = (((b + 1) as u64) << sh).min(t1);
                ((bytes as u128 * (hi - lo) as u128) / dur as u128) as u64
            };
            *slot = portion;
            assigned += portion;
        }
        for (&portion, b) in portions[b0..=b1].iter().zip(b0..) {
            if portion == 0 {
                continue;
            }
            let col = &mut self.cells[b * n..(b + 1) * n];
            for &link in links {
                if let Some(c) = col.get_mut(link as usize) {
                    *c += portion;
                }
            }
        }
    }
}

/// The bounded-memory run summary a [`StreamRecorder`] produces:
/// exact totals, mergeable histograms, the link heatmap, and per-rank
/// accounting. Exported as dependency-free JSON by [`summary_json`] and
/// rendered human-readable by [`summary_report`].
#[derive(Debug)]
pub struct ObsSummary {
    /// Ranks in the job.
    pub nranks: u32,
    /// Latest rank completion (ns).
    pub makespan_ns: u64,
    /// Sends posted.
    pub msgs_posted: u64,
    /// Sends that took the eager path.
    pub eager_msgs: u64,
    /// Arrivals queued unexpected before their receive was posted.
    pub unexpected_matches: u64,
    /// Flows lost to injected faults.
    pub drops: u64,
    /// Reliability-layer relaunches.
    pub retransmits: u64,
    /// Payload bytes posted.
    pub bytes_posted: u64,
    /// Flows launched into the network.
    pub flow_starts: u64,
    /// Program handler dispatches.
    pub dispatches: u64,
    /// Protocol actions on rank CPUs.
    pub protocols: u64,
    /// High-water mark of in-flight messages held by the recorder.
    pub peak_open_msgs: u64,
    /// High-water mark of tracked network slots.
    pub peak_slots: u64,
    /// Launch→delivery duration per flow class, in [`FlowClass::ALL`]
    /// order.
    pub flow_dur: Vec<(FlowClass, Hist)>,
    /// Send posted → arrival matched (ns).
    pub posted_to_matched: Hist,
    /// Matched → payload delivered (ns; 0 when delivery preceded the
    /// match, i.e. unexpected arrivals).
    pub matched_to_delivered: Hist,
    /// Send posted → CTS back at the sender (rendezvous handshake, ns).
    pub rts_to_cts: Hist,
    /// Retransmits per message (one sample per settled message).
    pub retransmits_per_msg: Hist,
    /// Heatmap column width (ns).
    pub heat_bucket_ns: u64,
    /// Link labels (all links, indexed by link id).
    pub link_labels: Vec<String>,
    /// `(link id, HEAT_COLS byte counts)` for links that carried bytes.
    pub heat: Vec<(u32, Vec<u64>)>,
    /// Per-rank completion times (ns).
    pub finish_ns: Vec<u64>,
    /// Per-rank CPU busy time: dispatch + protocol spans (they tile the
    /// rank's busy horizon, so the sum is exact union time).
    pub busy_ns: Vec<u64>,
    /// Per-rank compute/GPU span time (may overlap CPU busy time).
    pub compute_ns: Vec<u64>,
    /// Per-rank injected OS-noise time (ns).
    pub noise_ns: Vec<u64>,
    /// Per-rank injected stall time (ns).
    pub stall_ns: Vec<u64>,
}

/// Aggregates the probe stream online; memory never grows with run
/// length. See the module docs for the contract.
#[derive(Default)]
pub struct StreamRecorder {
    nranks: u32,
    link_labels: Vec<String>,
    // Aggregates ---------------------------------------------------
    flow_dur: Vec<Hist>, // FlowClass::ALL order
    posted_to_matched: Hist,
    matched_to_delivered: Hist,
    rts_to_cts: Hist,
    retransmits_per_msg: Hist,
    heat: Heatmap,
    msgs_posted: u64,
    eager_msgs: u64,
    unexpected_matches: u64,
    drops: u64,
    retransmits: u64,
    bytes_posted: u64,
    flow_starts: u64,
    dispatches: u64,
    protocols: u64,
    busy_ns: Vec<u64>,
    compute_ns: Vec<u64>,
    noise_ns: Vec<u64>,
    stall_ns: Vec<u64>,
    // In-flight working set (bounded by concurrency, not run length) -
    open_msgs: FxHashMap<u64, OpenMsg>,
    slots: Vec<SlotState>,
    peak_open_msgs: u64,
    peak_slots: u64,
    // Outputs ------------------------------------------------------
    flight: Option<FlightRecorder>,
    summary: Option<ObsSummary>,
}

impl StreamRecorder {
    /// A streaming recorder with no flight ring.
    pub fn new() -> StreamRecorder {
        StreamRecorder {
            flow_dur: vec![Hist::new(); FlowClass::ALL.len()],
            ..StreamRecorder::default()
        }
    }

    /// Also keep a flight ring of the most recent `capacity` spans for
    /// stall/audit post-mortems.
    pub fn with_flight(mut self, capacity: usize) -> StreamRecorder {
        self.flight = Some(FlightRecorder::new(capacity));
        self
    }

    /// Current in-flight working-set size `(open messages, tracked
    /// slots)` — the only state that is not a fixed-size aggregate. The
    /// bounded-memory test pins this against a million-probe stream.
    pub fn resident_state(&self) -> (usize, usize) {
        (self.open_msgs.len(), self.slots.len())
    }
}

impl Recorder for StreamRecorder {
    fn enabled(&self) -> bool {
        true
    }

    // No gauge sampling: the heatmap is built from flow probes, so the
    // hot loop never pays the sampler.
    fn metrics_interval(&self) -> Option<u64> {
        None
    }

    fn meta(&mut self, nranks: u32, link_labels: Vec<String>) {
        self.nranks = nranks;
        // Steady-state in-flight windows are a few hundred messages;
        // reserving up front keeps rehashes off the probe path.
        self.open_msgs.reserve(1024);
        self.busy_ns = vec![0; nranks as usize];
        self.compute_ns = vec![0; nranks as usize];
        self.noise_ns = vec![0; nranks as usize];
        self.stall_ns = vec![0; nranks as usize];
        self.heat.init(link_labels.len());
        self.link_labels = link_labels;
    }

    fn rank_windows(&mut self, rank: u32, noise: Vec<(u64, u64)>, stalls: Vec<(u64, u64)>) {
        let r = rank as usize;
        if let Some(n) = self.noise_ns.get_mut(r) {
            *n = noise.iter().map(|(b, e)| e - b).sum();
        }
        if let Some(s) = self.stall_ns.get_mut(r) {
            *s = stalls.iter().map(|(b, e)| e - b).sum();
        }
    }

    #[inline]
    fn msg_posted(
        &mut self,
        msg: u64,
        _src: u32,
        _dst: u32,
        _tag: u32,
        bytes: u64,
        eager: bool,
        t_ns: u64,
    ) {
        self.msgs_posted += 1;
        self.bytes_posted += bytes;
        self.eager_msgs += eager as u64;
        self.open_msgs.insert(
            msg,
            OpenMsg {
                posted_ns: t_ns,
                ..OpenMsg::default()
            },
        );
        self.peak_open_msgs = self.peak_open_msgs.max(self.open_msgs.len() as u64);
    }

    #[inline]
    fn msg_event(&mut self, msg: u64, ev: MsgEvent, t_ns: u64) {
        if let Some(f) = &mut self.flight {
            f.push(FlightSpan::Msg {
                msg,
                label: ev.label(),
                t_ns,
            });
        }
        match ev {
            MsgEvent::Dropped => self.drops += 1,
            MsgEvent::Retransmit => self.retransmits += 1,
            _ => {}
        }
        let Some(m) = self.open_msgs.get_mut(&msg) else {
            return; // already settled (or not a tracked posting)
        };
        match ev {
            MsgEvent::Matched { unexpected, .. } => {
                self.unexpected_matches += unexpected as u64;
                m.matched_ns = Some(t_ns);
                self.posted_to_matched
                    .record(t_ns.saturating_sub(m.posted_ns));
                if let Some(d) = m.delivered_ns {
                    // Delivery preceded the match: unexpected arrival.
                    self.matched_to_delivered.record(d.saturating_sub(t_ns));
                }
            }
            MsgEvent::Delivered => {
                m.delivered_ns = Some(t_ns);
                if let Some(mt) = m.matched_ns {
                    self.matched_to_delivered.record(t_ns.saturating_sub(mt));
                }
            }
            MsgEvent::CtsArrived => {
                self.rts_to_cts.record(t_ns.saturating_sub(m.posted_ns));
            }
            MsgEvent::RecvReady => m.recv_ready = true,
            MsgEvent::Retransmit => m.retransmits += 1,
            MsgEvent::Acked => m.acked = true,
            _ => {}
        }
        if m.settled() {
            // Nothing more can happen: evict, finalizing the aggregates.
            let retransmits = m.retransmits;
            self.open_msgs.remove(&msg);
            self.retransmits_per_msg.record(retransmits);
        }
    }

    #[inline]
    fn flow_start(&mut self, slot: u32, rec: FlowStart, links: &[u32]) {
        self.flow_starts += 1;
        if let Some(f) = &mut self.flight {
            f.push(FlightSpan::Flow {
                slot,
                label: rec.class.label(),
                bytes: rec.bytes,
                t_ns: rec.t_ns,
                end: false,
            });
        }
        let s = slot as usize;
        if self.slots.len() <= s {
            self.slots.resize(s + 1, SlotState::default());
            self.peak_slots = self.slots.len() as u64;
        }
        // Slots are reused, so refilling the existing link buffer keeps
        // the steady-state flow probe allocation-free.
        let state = &mut self.slots[s];
        state.class = rec.class;
        state.launch_ns = rec.t_ns;
        state.bytes = rec.bytes;
        state.links.clear();
        state.links.extend_from_slice(links);
        state.drained = false;
        state.live = true;
    }

    #[inline]
    fn flow_drained(&mut self, slot: u32, t_ns: u64) {
        let Some(s) = self.slots.get_mut(slot as usize).filter(|s| s.live) else {
            return;
        };
        s.drained = true;
        let (t0, bytes) = (s.launch_ns, s.bytes);
        // `heat` and `slots` are disjoint fields, so the span borrows the
        // slot's link list in place — no per-flow buffer shuffling.
        self.heat
            .add_span(&self.slots[slot as usize].links, t0, t_ns, bytes);
    }

    #[inline]
    fn flow_delivered(&mut self, slot: u32, t_ns: u64) {
        let Some(s) = self.slots.get_mut(slot as usize).filter(|s| s.live) else {
            return;
        };
        s.live = false;
        let (class, t0, drained, bytes) = (s.class, s.launch_ns, s.drained, s.bytes);
        if !drained {
            // Zero-byte control flows skip the drain step (no bytes, so
            // the heatmap ignores them anyway).
            self.heat
                .add_span(&self.slots[slot as usize].links, t0, t_ns, bytes);
        }
        self.flow_dur[class.index()].record(t_ns.saturating_sub(t0));
        if let Some(f) = &mut self.flight {
            f.push(FlightSpan::Flow {
                slot,
                label: class.label(),
                bytes: 0,
                t_ns,
                end: true,
            });
        }
    }

    #[inline]
    fn dispatch(&mut self, rank: u32, begin_ns: u64, end_ns: u64, trigger: Trigger) {
        self.dispatches += 1;
        if let Some(b) = self.busy_ns.get_mut(rank as usize) {
            *b += end_ns.saturating_sub(begin_ns);
        }
        if let Some(f) = &mut self.flight {
            f.push(FlightSpan::Dispatch {
                rank,
                begin_ns,
                end_ns,
                label: trigger.label(),
            });
        }
    }

    #[inline]
    fn protocol(&mut self, rank: u32, begin_ns: u64, end_ns: u64, kind: ProtoKind, msg: u64) {
        self.protocols += 1;
        if let Some(b) = self.busy_ns.get_mut(rank as usize) {
            *b += end_ns.saturating_sub(begin_ns);
        }
        if let Some(f) = &mut self.flight {
            f.push(FlightSpan::Proto {
                rank,
                begin_ns,
                end_ns,
                label: kind.label(),
                msg,
            });
        }
    }

    #[inline]
    fn compute(&mut self, rank: u32, token: u64, begin_ns: u64, end_ns: u64, gpu: bool) {
        if let Some(c) = self.compute_ns.get_mut(rank as usize) {
            *c += end_ns.saturating_sub(begin_ns);
        }
        if let Some(f) = &mut self.flight {
            f.push(FlightSpan::Compute {
                rank,
                token,
                begin_ns,
                end_ns,
                gpu,
            });
        }
    }

    fn gauge(&mut self, _t_ns: u64, _metric: GaugeMetric, _index: u32, _value: f64) {}

    fn alert(&mut self, a: crate::monitor::HealthAlert) {
        // Alerts land in the flight ring next to the spans they explain,
        // so a post-mortem fragment shows what the monitor saw last.
        if let Some(f) = &mut self.flight {
            f.push(FlightSpan::Alert {
                label: a.kind.label(),
                subject: a.subject,
                t_ns: a.t_ns,
            });
        }
    }

    fn finish(&mut self, per_rank_finish_ns: &[u64]) -> Option<ObsData> {
        // Flush messages still open at end of run (their retransmit
        // counts are final now). Histogram adds commute, so HashMap
        // iteration order cannot show in the result.
        let leftovers: Vec<u64> = self.open_msgs.values().map(|m| m.retransmits).collect();
        for r in leftovers {
            self.retransmits_per_msg.record(r);
        }
        self.open_msgs.clear();
        let nlinks = self.heat.nlinks;
        let heat: Vec<(u32, Vec<u64>)> = (0..nlinks)
            .filter_map(|l| {
                let row: Vec<u64> = (0..HEAT_COLS)
                    .map(|c| self.heat.cells[c * nlinks + l])
                    .collect();
                row.iter().any(|&c| c > 0).then_some((l as u32, row))
            })
            .collect();
        self.summary = Some(ObsSummary {
            nranks: self.nranks,
            makespan_ns: per_rank_finish_ns.iter().copied().max().unwrap_or(0),
            msgs_posted: self.msgs_posted,
            eager_msgs: self.eager_msgs,
            unexpected_matches: self.unexpected_matches,
            drops: self.drops,
            retransmits: self.retransmits,
            bytes_posted: self.bytes_posted,
            flow_starts: self.flow_starts,
            dispatches: self.dispatches,
            protocols: self.protocols,
            peak_open_msgs: self.peak_open_msgs,
            peak_slots: self.peak_slots,
            flow_dur: FlowClass::ALL
                .iter()
                .zip(self.flow_dur.drain(..))
                .map(|(c, h)| (*c, h))
                .collect(),
            posted_to_matched: std::mem::take(&mut self.posted_to_matched),
            matched_to_delivered: std::mem::take(&mut self.matched_to_delivered),
            rts_to_cts: std::mem::take(&mut self.rts_to_cts),
            retransmits_per_msg: std::mem::take(&mut self.retransmits_per_msg),
            heat_bucket_ns: self.heat.width_ns(),
            link_labels: std::mem::take(&mut self.link_labels),
            heat,
            finish_ns: per_rank_finish_ns.to_vec(),
            busy_ns: std::mem::take(&mut self.busy_ns),
            compute_ns: std::mem::take(&mut self.compute_ns),
            noise_ns: std::mem::take(&mut self.noise_ns),
            stall_ns: std::mem::take(&mut self.stall_ns),
        });
        None
    }

    fn finish_summary(&mut self) -> Option<ObsSummary> {
        self.summary.take()
    }

    fn flight_dump(&mut self) -> Option<String> {
        self.flight.as_ref().map(|f| f.chrome_fragment())
    }
}

// ---------------------------------------------------------------------
// JSON export
// ---------------------------------------------------------------------

fn hist_json(out: &mut String, h: &Hist) {
    out.push('{');
    write!(out, "\"count\":{},\"sum\":{}", h.count(), h.sum()).unwrap();
    if let (Some(min), Some(max)) = (h.min(), h.max()) {
        write!(out, ",\"min\":{min},\"max\":{max}").unwrap();
    }
    out.push_str(",\"buckets\":[");
    for (i, (low, c)) in h.nonzero_buckets().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write!(out, "[{low},{c}]").unwrap();
    }
    out.push_str("]}");
}

fn u64s_json(out: &mut String, vs: &[u64]) {
    out.push('[');
    for (i, v) in vs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write!(out, "{v}").unwrap();
    }
    out.push(']');
}

/// Serialize a summary as dependency-free JSON (format
/// [`SUMMARY_FORMAT`]). Key order and number formatting are fixed, so
/// identical summaries serialize byte-identically.
pub fn summary_json(s: &ObsSummary) -> String {
    let mut out = String::with_capacity(4096 + 16 * s.nranks as usize);
    write!(
        out,
        "{{\"format\": \"{SUMMARY_FORMAT}\",\n\"nranks\": {},\n\"makespan_ns\": {},\n",
        s.nranks, s.makespan_ns
    )
    .unwrap();
    writeln!(
        out,
        "\"totals\": {{\"msgs\":{},\"eager_msgs\":{},\"unexpected_matches\":{},\
         \"drops\":{},\"retransmits\":{},\"bytes_posted\":{},\"flow_starts\":{},\
         \"dispatches\":{},\"protocols\":{},\"peak_open_msgs\":{},\"peak_slots\":{}}},",
        s.msgs_posted,
        s.eager_msgs,
        s.unexpected_matches,
        s.drops,
        s.retransmits,
        s.bytes_posted,
        s.flow_starts,
        s.dispatches,
        s.protocols,
        s.peak_open_msgs,
        s.peak_slots,
    )
    .unwrap();
    out.push_str("\"flow_dur\": [");
    let mut first = true;
    for (class, h) in &s.flow_dur {
        if h.count() == 0 {
            continue; // absent classes emit no entries
        }
        if !first {
            out.push(',');
        }
        first = false;
        write!(out, "\n{{\"class\": \"{}\", \"hist\": ", class.label()).unwrap();
        hist_json(&mut out, h);
        out.push('}');
    }
    out.push_str("],\n\"stages\": {");
    for (i, (name, h)) in [
        ("posted_to_matched", &s.posted_to_matched),
        ("matched_to_delivered", &s.matched_to_delivered),
        ("rts_to_cts", &s.rts_to_cts),
        ("retransmits_per_msg", &s.retransmits_per_msg),
    ]
    .into_iter()
    .enumerate()
    {
        if i > 0 {
            out.push(',');
        }
        write!(out, "\n\"{name}\": ").unwrap();
        hist_json(&mut out, h);
    }
    write!(
        out,
        "}},\n\"heat\": {{\"bucket_ns\": {}, \"cols\": {HEAT_COLS}, \"links\": [",
        s.heat_bucket_ns
    )
    .unwrap();
    for (i, (link, cells)) in s.heat.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let label = s
            .link_labels
            .get(*link as usize)
            .map(String::as_str)
            .unwrap_or("link");
        write!(
            out,
            "\n{{\"link\": {link}, \"label\": \"{}\", \"cells\": [",
            crate::chrome::esc(label)
        )
        .unwrap();
        // Sparse: only non-zero columns, as [col, bytes] pairs.
        let mut cfirst = true;
        for (col, &v) in cells.iter().enumerate() {
            if v == 0 {
                continue;
            }
            if !cfirst {
                out.push(',');
            }
            cfirst = false;
            write!(out, "[{col},{v}]").unwrap();
        }
        out.push_str("]}");
    }
    out.push_str("]},\n\"ranks\": {");
    for (i, (name, vs)) in [
        ("finish_ns", &s.finish_ns),
        ("busy_ns", &s.busy_ns),
        ("compute_ns", &s.compute_ns),
        ("noise_ns", &s.noise_ns),
        ("stall_ns", &s.stall_ns),
    ]
    .into_iter()
    .enumerate()
    {
        if i > 0 {
            out.push(',');
        }
        write!(out, "\n\"{name}\": ").unwrap();
        u64s_json(&mut out, vs);
    }
    out.push_str("}\n}\n");
    out
}

// ---------------------------------------------------------------------
// Human-readable report
// ---------------------------------------------------------------------

fn hist_row(out: &mut String, name: &str, h: &Hist) {
    let p = |q| h.percentile(q).unwrap_or(0);
    writeln!(
        out,
        "    {name:<22} {:>10} {:>12} {:>12} {:>12} {:>12}",
        h.count(),
        p(50.0),
        p(90.0),
        p(99.0),
        h.max().unwrap_or(0),
    )
    .unwrap();
}

fn fmt_bytes(b: u64) -> String {
    match b {
        0..=1023 => format!("{b} B"),
        _ if b < 1 << 20 => format!("{:.1} KiB", b as f64 / 1024.0),
        _ if b < 1 << 30 => format!("{:.1} MiB", b as f64 / (1 << 20) as f64),
        _ => format!("{:.1} GiB", b as f64 / (1 << 30) as f64),
    }
}

/// Render a summary as a human-readable report: exact totals, tail
/// percentile tables (via the shared nearest-rank util), and the top-k
/// link hot-spot map.
pub fn summary_report(s: &ObsSummary) -> String {
    let mut out = String::with_capacity(2048);
    writeln!(out, "streaming telemetry summary").unwrap();
    writeln!(
        out,
        "  ranks {}  makespan {}.{:03} us",
        s.nranks,
        s.makespan_ns / 1000,
        s.makespan_ns % 1000
    )
    .unwrap();
    writeln!(
        out,
        "  msgs {} ({} eager, {} unexpected)  bytes {}  drops {}  retransmits {}",
        s.msgs_posted,
        s.eager_msgs,
        s.unexpected_matches,
        fmt_bytes(s.bytes_posted),
        s.drops,
        s.retransmits
    )
    .unwrap();
    writeln!(
        out,
        "  flows {}  dispatches {}  protocols {}  (recorder peak: {} open msgs, {} slots)",
        s.flow_starts, s.dispatches, s.protocols, s.peak_open_msgs, s.peak_slots
    )
    .unwrap();

    let header = format!(
        "    {:<22} {:>10} {:>12} {:>12} {:>12} {:>12}",
        "", "count", "p50", "p90", "p99", "max"
    );
    writeln!(out, "\n  stage latencies (ns)\n{header}").unwrap();
    hist_row(&mut out, "posted->matched", &s.posted_to_matched);
    hist_row(&mut out, "matched->delivered", &s.matched_to_delivered);
    hist_row(&mut out, "rts->cts", &s.rts_to_cts);
    hist_row(&mut out, "retransmits/msg", &s.retransmits_per_msg);

    writeln!(out, "\n  flow durations (ns)\n{header}").unwrap();
    for (class, h) in &s.flow_dur {
        if h.count() > 0 {
            hist_row(&mut out, class.label(), h);
        }
    }

    // Top-k hot links by total bytes (ties broken by link id: stable).
    let mut totals: Vec<(u64, u32, &[u64])> = s
        .heat
        .iter()
        .map(|(l, cells)| (cells.iter().sum::<u64>(), *l, cells.as_slice()))
        .collect();
    totals.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let k = totals.len().min(5);
    writeln!(
        out,
        "\n  link hot spots (top {k} of {} by bytes; column {} ns)",
        totals.len(),
        s.heat_bucket_ns
    )
    .unwrap();
    for &(total, link, cells) in totals.iter().take(k) {
        let (peak_col, peak) = cells
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(c, &v)| (c, v))
            .unwrap_or((0, 0));
        // Resolve the raw class label to a topology name so the hot-spot
        // table reads "node3/nic-tx", not "NicTx(3)".
        let label = crate::topo_label(
            s.link_labels
                .get(link as usize)
                .map(String::as_str)
                .unwrap_or("link"),
        );
        writeln!(
            out,
            "    L{link:<4} {label:<18} {:>10}   peak {:>10} @ col {peak_col}",
            fmt_bytes(total),
            fmt_bytes(peak),
        )
        .unwrap();
    }

    // Rank busy/idle: exact per-rank numbers through the shared
    // nearest-rank percentile (sorted copies; O(ranks) memory).
    let mut busy = s.busy_ns.clone();
    busy.sort_unstable();
    let p = |q| percentile(&busy, q).unwrap_or(0);
    let idle: Vec<u64> = s
        .busy_ns
        .iter()
        .map(|&b| s.makespan_ns.saturating_sub(b))
        .collect();
    let mean_idle = if idle.is_empty() {
        0
    } else {
        idle.iter().sum::<u64>() / idle.len() as u64
    };
    writeln!(
        out,
        "\n  rank busy (ns): min {}  p50 {}  p99 {}  max {}   mean idle {}",
        busy.first().copied().unwrap_or(0),
        p(50.0),
        p(99.0),
        busy.last().copied().unwrap_or(0),
        mean_idle
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe_msg(r: &mut StreamRecorder, id: u64, t: u64) {
        r.msg_posted(id, 0, 1, 9, 4096, true, t);
        r.msg_event(id, MsgEvent::Delivered, t + 50);
        r.msg_event(
            id,
            MsgEvent::Matched {
                posted_ns: Some(t),
                unexpected: false,
            },
            t + 50,
        );
        r.msg_event(id, MsgEvent::RecvReady, t + 60);
    }

    fn flow(class: FlowClass, bytes: u64, t: u64) -> FlowStart {
        FlowStart {
            class,
            msg: None,
            rank: 0,
            token: 0,
            bytes,
            t_ns: t,
        }
    }

    #[test]
    fn million_probes_leave_only_aggregate_state() {
        let mut r = StreamRecorder::new();
        r.meta(8, (0..4).map(|l| format!("L{l}")).collect());
        // A rolling in-flight window of 32 messages and 4 flow slots,
        // one million probes total: resident state must track the
        // window, never the probe count.
        const N: u64 = 250_000; // 4 probes per message
        for i in 0..N {
            probe_msg(&mut r, i, i * 100);
            let slot = (i % 4) as u32;
            r.flow_start(
                slot,
                flow(FlowClass::Eager, 4096, i * 100),
                &[(i % 4) as u32],
            );
            r.flow_drained(slot, i * 100 + 40);
            r.flow_delivered(slot, i * 100 + 50);
            r.dispatch((i % 8) as u32, i * 100, i * 100 + 10, Trigger::Start);
        }
        let (open, slots) = r.resident_state();
        assert_eq!(open, 0, "settled messages must be evicted");
        assert!(slots <= 4, "slots track peak concurrency, got {slots}");
        r.finish(&[N * 100; 8]);
        let s = r.finish_summary().expect("summary");
        assert_eq!(s.msgs_posted, N);
        assert_eq!(s.flow_starts, N);
        assert_eq!(s.dispatches, N);
        assert!(s.peak_open_msgs <= 2, "got {}", s.peak_open_msgs);
        assert_eq!(s.peak_slots, 4);
        assert_eq!(s.flow_dur[FlowClass::Eager.index()].1.count(), N);
        assert_eq!(s.posted_to_matched.count(), N);
        // 4096 B per flow, spread over 4 links' heat rows.
        let heat_total: u64 = s.heat.iter().flat_map(|(_, c)| c.iter()).sum();
        assert_eq!(heat_total, N * 4096);
        assert_eq!(s.busy_ns.iter().sum::<u64>(), N * 10);
    }

    #[test]
    fn stage_latencies_follow_the_lifecycle() {
        let mut r = StreamRecorder::new();
        r.meta(2, vec!["L0".into()]);
        // Rendezvous: posted 100, CTS back 300, delivered 700, matched 150.
        r.msg_posted(7, 0, 1, 1, 1 << 20, false, 100);
        r.msg_event(
            7,
            MsgEvent::Matched {
                posted_ns: Some(90),
                unexpected: false,
            },
            150,
        );
        r.msg_event(7, MsgEvent::CtsArrived, 300);
        r.msg_event(7, MsgEvent::Delivered, 700);
        r.msg_event(7, MsgEvent::RecvReady, 710);
        r.finish(&[1000, 1000]);
        let s = r.finish_summary().unwrap();
        assert_eq!(s.posted_to_matched.max(), Some(50));
        assert_eq!(s.rts_to_cts.max(), Some(200));
        assert_eq!(s.matched_to_delivered.max(), Some(550));
        assert_eq!(s.retransmits_per_msg.count(), 1);
        assert_eq!(s.retransmits_per_msg.max(), Some(0));
    }

    #[test]
    fn retransmitted_messages_settle_on_ack() {
        let mut r = StreamRecorder::new();
        r.meta(2, vec![]);
        r.msg_posted(0, 0, 1, 0, 64, true, 0);
        r.msg_event(0, MsgEvent::Dropped, 10);
        r.msg_event(0, MsgEvent::Retransmit, 60);
        r.msg_event(0, MsgEvent::Delivered, 90);
        r.msg_event(
            0,
            MsgEvent::Matched {
                posted_ns: None,
                unexpected: false,
            },
            90,
        );
        r.msg_event(0, MsgEvent::RecvReady, 95);
        assert_eq!(r.resident_state().0, 1, "held until the ack");
        r.msg_event(0, MsgEvent::Acked, 120);
        assert_eq!(r.resident_state().0, 0);
        r.finish(&[200, 200]);
        let s = r.finish_summary().unwrap();
        assert_eq!((s.drops, s.retransmits), (1, 1));
        assert_eq!(s.retransmits_per_msg.max(), Some(1));
    }

    #[test]
    fn heatmap_folds_instead_of_growing() {
        let mut h = Heatmap::default();
        h.init(1);
        // One span per millisecond for 1000 ms: far beyond the initial
        // 64 × 1024 ns grid.
        for i in 0..1000u64 {
            h.add_span(&[0], i * 1_000_000, i * 1_000_000 + 500_000, 1000);
        }
        assert_eq!(h.cells.len(), HEAT_COLS);
        assert_eq!(h.cells.iter().sum::<u64>(), 1_000_000);
        assert!(h.width_ns() >= 1_000_000_000 / HEAT_COLS as u64);
        assert!(h.width_ns().is_power_of_two());
    }

    #[test]
    fn heat_fold_on_the_exact_column_boundary_conserves_bytes() {
        // A run whose length lands exactly on a power-of-two column
        // boundary: fill every column of the initial 64 × 1024 ns grid
        // across two links, then land one span exactly at t = 64 × 1024
        // (first ns past the grid) to force a single pairwise fold.
        let mut h = Heatmap::default();
        h.init(2);
        let grid_ns = HEAT_COLS as u64 * HEAT_BASE_NS;
        for c in 0..HEAT_COLS as u64 {
            h.add_span(&[0], c * HEAT_BASE_NS, c * HEAT_BASE_NS + 1, 10);
            h.add_span(&[1], c * HEAT_BASE_NS, c * HEAT_BASE_NS + 1, 3);
        }
        let before: u64 = h.cells.iter().sum();
        assert_eq!(before, HEAT_COLS as u64 * 13);
        let shift_before = h.shift;

        h.add_span(&[0, 1], grid_ns, grid_ns + 1, 7);

        // Exactly one fold: column width doubled, the grid stayed fixed
        // size, and the folded-out half is zero except the new span's
        // landing column.
        assert_eq!(h.shift, shift_before + 1);
        assert_eq!(h.cells.len(), 2 * HEAT_COLS);
        assert_eq!(
            h.cells.iter().sum::<u64>(),
            before + 14,
            "pairwise fold must conserve per-link byte totals"
        );
        // Per-link conservation, not just the grand total: link 0 rows
        // sum to 64×10 + 7, link 1 rows to 64×3 + 7.
        let link_total = |l: usize| (0..HEAT_COLS).map(|c| h.cells[c * 2 + l]).sum::<u64>();
        assert_eq!(link_total(0), HEAT_COLS as u64 * 10 + 7);
        assert_eq!(link_total(1), HEAT_COLS as u64 * 3 + 7);
        // The fold halved the populated region: the old 64 columns now
        // occupy the first 32, and the boundary span sits at column 32.
        for l in 0..2 {
            assert_eq!(h.cells[32 * 2 + l], 7, "boundary span lands at col 32");
            for c in 33..HEAT_COLS {
                assert_eq!(h.cells[c * 2 + l], 0, "tail must be zeroed (col {c})");
            }
        }
    }

    #[test]
    fn heat_proration_is_exact_per_flow() {
        let mut h = Heatmap::default();
        h.init(1);
        // Spans straddling column boundaries keep exact byte totals.
        h.add_span(&[0], 100, 5000, 7777);
        h.add_span(&[0], 0, 1, 13);
        assert_eq!(h.cells.iter().sum::<u64>(), 7790);
    }

    #[test]
    fn summary_json_is_stable_and_validates() {
        let mut r = StreamRecorder::new();
        r.meta(2, vec!["NicTx(0)".into(), "NicTx(1)".into()]);
        probe_msg(&mut r, 0, 100);
        r.flow_start(0, flow(FlowClass::Eager, 4096, 100), &[1]);
        r.flow_drained(0, 140);
        r.flow_delivered(0, 150);
        r.finish(&[150, 160]);
        let s = r.finish_summary().unwrap();
        let json = summary_json(&s);
        assert!(json.starts_with("{\"format\": \"adapt-obs-summary-v1\""));
        let chk = crate::validate::validate_summary(&json).expect("valid");
        assert_eq!(chk.msgs, 1);
        assert_eq!(chk.hot_links, 1);
        // Absent flow classes emit no entries.
        assert!(!json.contains("\"class\": \"rndv\""));
        let report = summary_report(&s);
        assert!(report.contains("posted->matched"), "{report}");
        assert!(report.contains("L1"), "{report}");
    }
}
