//! Critical-path analysis over recorded span causality.
//!
//! [`critical_path`] starts at the last rank to finish and walks
//! backwards: from each handler dispatch to the event that triggered it
//! (a drained send, a delivered message, a finished compute …), across
//! the network to the rank that caused *that*, and so on until the
//! initial `Start` dispatch. The result is a causally connected chain of
//! segments, each attributed to a layer (callback compute, protocol
//! work, matching, network transfer, compute, blocked waiting), tiled so
//! the segment durations sum exactly to the makespan.

use std::collections::HashMap;

use crate::record::{FlowClass, ObsData, ProtoKind, Trigger};

/// Which layer of the stack a critical-path segment charges time to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Layer {
    /// Program handler execution (dispatch spans, includes posted
    /// operation overheads and inline synchronous compute).
    Callback,
    /// Progress-engine protocol work (CTS send, data launch,
    /// unexpected-queue bookkeeping).
    Protocol,
    /// Unexpected-message matching and copy-out on the receiver.
    Matching,
    /// Time on the wire: RTS/CTS control and payload flows.
    Network,
    /// Asynchronous CPU compute.
    Compute,
    /// GPU-stream work.
    Gpu,
    /// Local asynchronous copies (staging DMA).
    Copy,
    /// Gaps: the chain's rank was waiting (or doing off-path work) with
    /// nothing on the critical chain running.
    Blocked,
}

/// Every layer, in report order.
pub const LAYERS: [Layer; 8] = [
    Layer::Callback,
    Layer::Protocol,
    Layer::Matching,
    Layer::Network,
    Layer::Compute,
    Layer::Gpu,
    Layer::Copy,
    Layer::Blocked,
];

impl Layer {
    /// Stable lowercase label.
    pub fn label(&self) -> &'static str {
        match self {
            Layer::Callback => "callback",
            Layer::Protocol => "protocol",
            Layer::Matching => "matching",
            Layer::Network => "network",
            Layer::Compute => "compute",
            Layer::Gpu => "gpu",
            Layer::Copy => "copy",
            Layer::Blocked => "blocked",
        }
    }
}

/// One tile of the critical path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Segment {
    /// Rank the segment runs on (for network segments: the initiating
    /// rank).
    pub rank: u32,
    /// Tile start (ns).
    pub begin_ns: u64,
    /// Tile end (ns).
    pub end_ns: u64,
    /// Layer charged.
    pub layer: Layer,
    /// Human-readable description of what ran.
    pub what: String,
}

impl Segment {
    /// Tile duration in nanoseconds.
    pub fn dur_ns(&self) -> u64 {
        self.end_ns - self.begin_ns
    }
}

/// The critical-path report: a chronological chain of segments tiling
/// `[0, makespan]` exactly.
#[derive(Clone, Debug, Default)]
pub struct CriticalPath {
    /// The run's makespan (ns).
    pub makespan_ns: u64,
    /// The last rank to finish (the walk's starting point).
    pub last_rank: u32,
    /// Chronological, non-overlapping, gap-free segments covering
    /// `[0, makespan]`.
    pub segments: Vec<Segment>,
}

impl CriticalPath {
    /// Sum of segment durations — equals `makespan_ns` by construction.
    pub fn total_ns(&self) -> u64 {
        self.segments.iter().map(Segment::dur_ns).sum()
    }

    /// Nanoseconds attributed to each layer, in [`LAYERS`] order.
    pub fn layer_totals(&self) -> Vec<(Layer, u64)> {
        LAYERS
            .iter()
            .map(|&l| {
                (
                    l,
                    self.segments
                        .iter()
                        .filter(|s| s.layer == l)
                        .map(Segment::dur_ns)
                        .sum(),
                )
            })
            .collect()
    }

    /// The `k` longest segments, longest first (ties: earliest first).
    pub fn longest_segments(&self, k: usize) -> Vec<&Segment> {
        let mut v: Vec<&Segment> = self.segments.iter().collect();
        v.sort_by_key(|s| (std::cmp::Reverse(s.dur_ns()), s.begin_ns));
        v.truncate(k);
        v
    }

    /// Render the report as human-readable text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "critical path: rank {} finished last at {:.3} us; {} segments\n",
            self.last_rank,
            self.makespan_ns as f64 / 1000.0,
            self.segments.len()
        ));
        out.push_str("layer attribution:\n");
        for (layer, ns) in self.layer_totals() {
            if ns == 0 {
                continue;
            }
            let pct = if self.makespan_ns > 0 {
                100.0 * ns as f64 / self.makespan_ns as f64
            } else {
                0.0
            };
            out.push_str(&format!(
                "  {:<9} {:>12.3} us  {:>5.1}%\n",
                layer.label(),
                ns as f64 / 1000.0,
                pct
            ));
        }
        let top = self.longest_segments(5);
        if !top.is_empty() {
            out.push_str(&format!("longest segments (top {}):\n", top.len()));
            for s in top {
                out.push_str(&format!(
                    "  {:>12.3} us  [{:>12.3} .. {:>12.3}]  rank {:<4} {:<9} {}\n",
                    s.dur_ns() as f64 / 1000.0,
                    s.begin_ns as f64 / 1000.0,
                    s.end_ns as f64 / 1000.0,
                    s.rank,
                    s.layer.label(),
                    s.what
                ));
            }
        }
        out.push_str("chain (chronological):\n");
        const SHOW: usize = 80;
        for s in self.segments.iter().take(SHOW) {
            out.push_str(&format!(
                "  [{:>12.3} .. {:>12.3}] us  rank {:<4} {:<9} {}\n",
                s.begin_ns as f64 / 1000.0,
                s.end_ns as f64 / 1000.0,
                s.rank,
                s.layer.label(),
                s.what
            ));
        }
        if self.segments.len() > SHOW {
            out.push_str(&format!(
                "  ... {} more segments\n",
                self.segments.len() - SHOW
            ));
        }
        out
    }
}

#[derive(Clone, Copy)]
enum SpanKind {
    Disp(usize),
    Proto(usize),
}

/// Walk span causality backwards from the last completing rank and
/// return the tiled critical-path report.
pub fn critical_path(data: &ObsData) -> CriticalPath {
    let makespan = data.makespan_ns();
    let last_rank = data
        .per_rank_finish_ns
        .iter()
        .enumerate()
        .max_by_key(|&(i, &t)| (t, std::cmp::Reverse(i)))
        .map(|(i, _)| i as u32)
        .unwrap_or(0);

    // Per-rank CPU spans (dispatch + protocol), sorted by begin.
    let nranks = data.nranks.max(data.per_rank_finish_ns.len() as u32) as usize;
    let mut per_rank: Vec<Vec<(u64, u64, SpanKind)>> = vec![Vec::new(); nranks];
    for (i, d) in data.dispatches.iter().enumerate() {
        if (d.rank as usize) < nranks {
            per_rank[d.rank as usize].push((d.begin_ns, d.end_ns, SpanKind::Disp(i)));
        }
    }
    for (i, p) in data.protocols.iter().enumerate() {
        if (p.rank as usize) < nranks {
            per_rank[p.rank as usize].push((p.begin_ns, p.end_ns, SpanKind::Proto(i)));
        }
    }
    for spans in &mut per_rank {
        spans.sort_by_key(|&(b, e, _)| (b, e));
    }

    // Flow lookups by message / by copy token.
    let nmsgs = data.msgs.len();
    let mut data_flow: Vec<Option<usize>> = vec![None; nmsgs];
    let mut rts_flow: Vec<Option<usize>> = vec![None; nmsgs];
    let mut cts_flow: Vec<Option<usize>> = vec![None; nmsgs];
    let mut copies: HashMap<(u32, u64), Vec<usize>> = HashMap::new();
    for (i, f) in data.flows.iter().enumerate() {
        match (f.class, f.msg) {
            (FlowClass::Eager | FlowClass::Rndv, Some(m)) if (m as usize) < nmsgs => {
                data_flow[m as usize] = Some(i)
            }
            (FlowClass::Rts, Some(m)) if (m as usize) < nmsgs => rts_flow[m as usize] = Some(i),
            (FlowClass::Cts, Some(m)) if (m as usize) < nmsgs => cts_flow[m as usize] = Some(i),
            (FlowClass::Copy, _) => copies.entry((f.rank, f.token)).or_default().push(i),
            _ => {}
        }
    }
    let mut computes: HashMap<(u32, u64), Vec<usize>> = HashMap::new();
    for (i, c) in data.computes.iter().enumerate() {
        computes.entry((c.rank, c.token)).or_default().push(i);
    }

    // Latest CPU span on `rank` beginning strictly before `cursor`.
    let latest_span = |rank: u32, cursor: u64| -> Option<(u64, u64, SpanKind)> {
        let spans = per_rank.get(rank as usize)?;
        let idx = spans.partition_point(|&(b, _, _)| b < cursor);
        (idx > 0).then(|| spans[idx - 1])
    };
    // Latest entry in `list` whose key time is strictly before `cursor`.
    let latest_before = |list: Option<&Vec<usize>>, cursor: u64, key: &dyn Fn(usize) -> u64| {
        list.and_then(|v| v.iter().rev().copied().find(|&i| key(i) < cursor))
    };

    // The backward walk. `rev` collects segments newest-first.
    let mut rev: Vec<Segment> = Vec::new();
    let mut rank = last_rank;
    let mut cursor = makespan;
    let limit = data.dispatches.len() + data.protocols.len() + data.flows.len() + 16;
    for _ in 0..limit {
        if cursor == 0 {
            break;
        }
        let Some((begin, end, kind)) = latest_span(rank, cursor) else {
            break;
        };
        let prev_cursor = cursor;
        match kind {
            SpanKind::Disp(i) => {
                let d = &data.dispatches[i];
                rev.push(Segment {
                    rank,
                    begin_ns: begin,
                    end_ns: end.min(cursor),
                    layer: Layer::Callback,
                    what: d.trigger.label().to_string(),
                });
                cursor = begin;
                match d.trigger {
                    Trigger::Start => break,
                    Trigger::ComputeDone { token } | Trigger::GpuDone { token } => {
                        if let Some(ci) =
                            latest_before(computes.get(&(rank, token)), cursor, &|i| {
                                data.computes[i].begin_ns
                            })
                        {
                            let c = &data.computes[ci];
                            rev.push(Segment {
                                rank,
                                begin_ns: c.begin_ns,
                                end_ns: c.end_ns.min(cursor),
                                layer: if c.gpu { Layer::Gpu } else { Layer::Compute },
                                what: format!("token {token}"),
                            });
                            cursor = c.begin_ns;
                        }
                    }
                    Trigger::CopyDone { token } => {
                        if let Some(fi) = latest_before(copies.get(&(rank, token)), cursor, &|i| {
                            data.flows[i].launch_ns
                        }) {
                            let f = &data.flows[fi];
                            rev.push(Segment {
                                rank,
                                begin_ns: f.launch_ns,
                                end_ns: f.delivered_ns.unwrap_or(cursor).min(cursor),
                                layer: Layer::Copy,
                                what: format!("copy token {token}"),
                            });
                            cursor = f.launch_ns;
                        }
                    }
                    Trigger::SendDone { msg } => {
                        if let Some(fi) = data_flow.get(msg as usize).copied().flatten() {
                            let f = &data.flows[fi];
                            if f.launch_ns < cursor {
                                rev.push(Segment {
                                    rank,
                                    begin_ns: f.launch_ns,
                                    end_ns: f.drained_ns.unwrap_or(cursor).min(cursor),
                                    layer: Layer::Network,
                                    what: format!("drain m{msg}"),
                                });
                                cursor = f.launch_ns;
                            }
                        }
                    }
                    Trigger::RecvDone { msg } => {
                        let m = &data.msgs[msg as usize];
                        if m.unexpected && m.eager {
                            // The gate was the local receive post: the
                            // copy-out from the unexpected queue runs
                            // between match and readiness.
                            if let (Some(ma), Some(rr)) = (m.matched_ns, m.recv_ready_ns) {
                                if ma < cursor {
                                    rev.push(Segment {
                                        rank,
                                        begin_ns: ma,
                                        end_ns: rr.min(cursor),
                                        layer: Layer::Matching,
                                        what: format!("unexpected copy m{msg}"),
                                    });
                                    cursor = ma;
                                }
                            }
                        } else if let Some(fi) = data_flow.get(msg as usize).copied().flatten() {
                            // The gate was the wire: follow the payload
                            // back to the sender.
                            let f = &data.flows[fi];
                            if f.launch_ns < cursor {
                                rev.push(Segment {
                                    rank: m.src,
                                    begin_ns: f.launch_ns,
                                    end_ns: f.delivered_ns.unwrap_or(cursor).min(cursor),
                                    layer: Layer::Network,
                                    what: format!("deliver m{msg} ({} B)", m.bytes),
                                });
                                rank = m.src;
                                cursor = f.launch_ns;
                            }
                        }
                    }
                }
            }
            SpanKind::Proto(i) => {
                let p = &data.protocols[i];
                rev.push(Segment {
                    rank,
                    begin_ns: begin,
                    end_ns: end.min(cursor),
                    layer: Layer::Protocol,
                    what: format!("{} m{}", p.kind.label(), p.msg),
                });
                cursor = begin;
                let m = &data.msgs[p.msg as usize];
                let arrival = match p.kind {
                    // Caused by the CTS arriving from the receiver.
                    ProtoKind::DataLaunch => cts_flow
                        .get(p.msg as usize)
                        .copied()
                        .flatten()
                        .map(|fi| (fi, m.dst)),
                    // Caused by the RTS arriving — unless the message sat
                    // unexpected, in which case the local receive post
                    // (the enclosing dispatch) is the cause.
                    ProtoKind::CtsSend if !m.unexpected => rts_flow
                        .get(p.msg as usize)
                        .copied()
                        .flatten()
                        .map(|fi| (fi, m.src)),
                    ProtoKind::CtsSend => None,
                    // Queuing an unexpected arrival: follow the arriving
                    // flow (payload for eager, RTS for rendezvous).
                    ProtoKind::Unexpected => {
                        let fi = if m.eager {
                            data_flow.get(p.msg as usize).copied().flatten()
                        } else {
                            rts_flow.get(p.msg as usize).copied().flatten()
                        };
                        fi.map(|fi| (fi, m.src))
                    }
                };
                if let Some((fi, from)) = arrival {
                    let f = &data.flows[fi];
                    if f.launch_ns < cursor {
                        rev.push(Segment {
                            rank: from,
                            begin_ns: f.launch_ns,
                            end_ns: f.delivered_ns.unwrap_or(cursor).min(cursor),
                            layer: Layer::Network,
                            what: format!("{} m{}", f.class.label(), p.msg),
                        });
                        rank = from;
                        cursor = f.launch_ns;
                    }
                }
            }
        }
        if cursor >= prev_cursor {
            break;
        }
    }

    // Tile: reverse to chronological, clamp overlaps, fill gaps with
    // Blocked segments so durations sum exactly to the makespan.
    rev.reverse();
    let mut segments: Vec<Segment> = Vec::with_capacity(rev.len() + 8);
    let mut cur = 0u64;
    let mut blocked_rank = rev.first().map(|s| s.rank).unwrap_or(last_rank);
    for s in rev {
        let end = s.end_ns.min(makespan);
        if s.begin_ns > cur {
            segments.push(Segment {
                rank: blocked_rank,
                begin_ns: cur,
                end_ns: s.begin_ns,
                layer: Layer::Blocked,
                what: "waiting".to_string(),
            });
            cur = s.begin_ns;
        }
        if end > cur {
            segments.push(Segment {
                rank: s.rank,
                begin_ns: cur,
                end_ns: end,
                layer: s.layer,
                what: s.what.clone(),
            });
            cur = end;
        }
        blocked_rank = s.rank;
    }
    if cur < makespan {
        segments.push(Segment {
            rank: last_rank,
            begin_ns: cur,
            end_ns: makespan,
            layer: Layer::Blocked,
            what: "waiting".to_string(),
        });
    }

    CriticalPath {
        makespan_ns: makespan,
        last_rank,
        segments,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::*;

    /// Two ranks, one eager message: rank 0's start handler posts the
    /// send, the payload crosses the wire, rank 1's recv-done handler
    /// closes the run.
    fn eager_run() -> ObsData {
        let mut d = ObsData {
            nranks: 2,
            per_rank_finish_ns: vec![150, 300],
            ..ObsData::default()
        };
        d.dispatches.push(DispatchSpan {
            rank: 0,
            begin_ns: 0,
            end_ns: 100,
            trigger: Trigger::Start,
        });
        d.dispatches.push(DispatchSpan {
            rank: 1,
            begin_ns: 0,
            end_ns: 40,
            trigger: Trigger::Start,
        });
        d.dispatches.push(DispatchSpan {
            rank: 1,
            begin_ns: 220,
            end_ns: 300,
            trigger: Trigger::RecvDone { msg: 0 },
        });
        d.msgs.push(MsgRec {
            src: 0,
            dst: 1,
            bytes: 64,
            eager: true,
            posted_ns: Some(50),
            matched_ns: Some(210),
            recv_ready_ns: Some(210),
            delivered_ns: Some(210),
            drained_ns: Some(150),
            ..MsgRec::default()
        });
        d.flows.push(FlowRec {
            class: FlowClass::Eager,
            msg: Some(0),
            rank: 0,
            token: 0,
            bytes: 64,
            links: vec![0],
            launch_ns: 50,
            drained_ns: Some(150),
            delivered_ns: Some(210),
        });
        d
    }

    #[test]
    fn chain_tiles_the_makespan_exactly() {
        let data = eager_run();
        let cp = critical_path(&data);
        assert_eq!(cp.makespan_ns, 300);
        assert_eq!(cp.last_rank, 1);
        assert_eq!(cp.total_ns(), cp.makespan_ns);
        // Tiles are chronological, contiguous, and start at zero.
        assert_eq!(cp.segments.first().unwrap().begin_ns, 0);
        assert_eq!(cp.segments.last().unwrap().end_ns, 300);
        for w in cp.segments.windows(2) {
            assert_eq!(w[0].end_ns, w[1].begin_ns);
        }
    }

    #[test]
    fn chain_crosses_the_network_back_to_the_sender() {
        let cp = critical_path(&eager_run());
        let layers: Vec<Layer> = cp.segments.iter().map(|s| s.layer).collect();
        assert!(layers.contains(&Layer::Network), "chain: {layers:?}");
        assert!(layers.contains(&Layer::Callback));
        // The walk reached rank 0's start handler.
        assert_eq!(cp.segments.first().unwrap().rank, 0);
        let net_ns = cp.layer_totals()[3].1;
        assert!(net_ns > 0);
    }

    #[test]
    fn render_mentions_every_active_layer() {
        let cp = critical_path(&eager_run());
        let text = cp.render();
        assert!(text.contains("critical path: rank 1"));
        assert!(text.contains("network"));
        assert!(text.contains("callback"));
    }

    #[test]
    fn longest_segments_are_sorted_and_reported() {
        let cp = critical_path(&eager_run());
        let top = cp.longest_segments(3);
        assert!(!top.is_empty() && top.len() <= 3);
        for w in top.windows(2) {
            assert!(w[0].dur_ns() >= w[1].dur_ns());
        }
        assert!(cp.render().contains("longest segments (top"));
    }

    #[test]
    fn empty_data_degrades_gracefully() {
        let cp = critical_path(&ObsData::default());
        assert_eq!(cp.makespan_ns, 0);
        assert_eq!(cp.total_ns(), 0);
        assert!(cp.render().contains("critical path"));
    }
}
