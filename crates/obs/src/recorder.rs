//! The [`Recorder`] boundary between the runtime and the observability
//! layer, plus its two implementations.
//!
//! The runtime caches `enabled()` in a flag and guards every probe with
//! it, so the disabled path costs one predictable branch per probe and
//! allocates nothing — the perf harness' `fig8_quick_bcast_256` scenario
//! runs with the [`NullRecorder`] and must show no regression.

use crate::record::*;
use crate::stream::ObsSummary;

/// A step in a message's lifetime, reported as it happens.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MsgEvent {
    /// RTS control message reached the receiver.
    RtsArrived,
    /// Receiver launched the CTS reply.
    CtsLaunch,
    /// CTS reached the sender.
    CtsArrived,
    /// Sender launched the rendezvous payload flow.
    DataLaunch,
    /// Payload fully injected (sender side complete).
    Drained,
    /// Payload fully delivered at the receiver.
    Delivered,
    /// Arrival and posted receive matched.
    Matched {
        /// When the matching receive was posted (ns), if known.
        posted_ns: Option<u64>,
        /// The message had been queued unexpected before the match.
        unexpected: bool,
    },
    /// RecvDone scheduled for the receiving program.
    RecvReady,
    /// A flow carrying this message was lost to an injected fault.
    Dropped,
    /// The reliability layer relaunched a lost flow after its RTO.
    Retransmit,
    /// The sender's acknowledgement arrived; the retransmit timer died.
    Acked,
}

impl MsgEvent {
    /// Stable lowercase label (flight-recorder marker name).
    pub fn label(&self) -> &'static str {
        match self {
            MsgEvent::RtsArrived => "rts_arrived",
            MsgEvent::CtsLaunch => "cts_launch",
            MsgEvent::CtsArrived => "cts_arrived",
            MsgEvent::DataLaunch => "data_launch",
            MsgEvent::Drained => "drained",
            MsgEvent::Delivered => "delivered",
            MsgEvent::Matched { .. } => "matched",
            MsgEvent::RecvReady => "recv_ready",
            MsgEvent::Dropped => "dropped",
            MsgEvent::Retransmit => "retransmit",
            MsgEvent::Acked => "acked",
        }
    }
}

/// A flow launch. The link ids along the path travel as a borrowed
/// slice parameter of [`Recorder::flow_start`] (not owned here), so the
/// per-flow probe costs no allocation — sinks that keep the routing copy
/// it, sinks that aggregate read it in place.
#[derive(Clone, Copy, Debug)]
pub struct FlowStart {
    /// Protocol class.
    pub class: FlowClass,
    /// Owning message (`None` for copies).
    pub msg: Option<u64>,
    /// Initiating rank.
    pub rank: u32,
    /// Copy token (copies only).
    pub token: u64,
    /// Bytes carried.
    pub bytes: u64,
    /// Launch instant (ns).
    pub t_ns: u64,
}

/// What the runtime reports to an attached observability sink. Every
/// method has a no-op default so sinks implement only what they need;
/// timestamps are deterministic simulation nanoseconds.
///
/// Attaching a recorder must never change simulation behaviour: probes
/// only read state the runtime computed anyway, and the golden tests
/// assert run results are identical with recording on and off.
///
/// Attaching a *disabled* recorder must also cost nothing measurable:
/// the runtime calls [`Recorder::enabled`] once at attach time and
/// caches the answer, so no virtual call sits on the hot path — every
/// probe site is a single predictable branch on the cached flag. The
/// benchmark barometer holds this to account: `fig8_quick_bcast_256`
/// (recording compiled in, disabled) is gated against the ledger, and
/// `fig8_quick_bcast_256_traced` tracks what enabling actually costs.
pub trait Recorder {
    /// Should the runtime fire probes at all? Called once when the
    /// recorder is attached and cached by the runtime — not consulted
    /// per probe.
    fn enabled(&self) -> bool {
        false
    }
    /// Gauge sampling interval in sim-time ns (`None` = no sampling).
    fn metrics_interval(&self) -> Option<u64> {
        None
    }
    /// Job shape, reported once at run start.
    fn meta(&mut self, _nranks: u32, _link_labels: Vec<String>) {}
    /// Pristine link parameters (capacity bytes/sec, latency ns per
    /// link id), reported once at run start. Feeds counterfactual
    /// network replay in the what-if engine.
    fn link_params(&mut self, _caps: Vec<f64>, _lat_ns: Vec<u64>) {}
    /// One rank's preemption windows, reported once at run end: OS-noise
    /// windows (generated past the makespan) and injected stall windows,
    /// both sorted and non-overlapping.
    fn rank_windows(&mut self, _rank: u32, _noise: Vec<(u64, u64)>, _stalls: Vec<(u64, u64)>) {}
    /// A send was posted (creates message id `_msg`).
    #[allow(clippy::too_many_arguments)] // mirrors the send signature
    fn msg_posted(
        &mut self,
        _msg: u64,
        _src: u32,
        _dst: u32,
        _tag: u32,
        _bytes: u64,
        _eager: bool,
        _t_ns: u64,
    ) {
    }
    /// A lifetime step of message `_msg`.
    fn msg_event(&mut self, _msg: u64, _ev: MsgEvent, _t_ns: u64) {}
    /// A flow launched into network slot `_slot` (slots are reused; the
    /// latest launch owns the slot). `_links` are the link ids along the
    /// flow's path, borrowed from the runtime.
    fn flow_start(&mut self, _slot: u32, _rec: FlowStart, _links: &[u32]) {}
    /// The flow in `_slot` fully injected its bytes.
    fn flow_drained(&mut self, _slot: u32, _t_ns: u64) {}
    /// The flow in `_slot` delivered (and left the network).
    fn flow_delivered(&mut self, _slot: u32, _t_ns: u64) {}
    /// A program handler dispatch completed.
    fn dispatch(&mut self, _rank: u32, _begin_ns: u64, _end_ns: u64, _trigger: Trigger) {}
    /// A protocol action completed on a rank's CPU.
    fn protocol(&mut self, _rank: u32, _begin_ns: u64, _end_ns: u64, _kind: ProtoKind, _msg: u64) {}
    /// A compute or GPU work span completed (times may be in the future
    /// at report time — the simulator schedules deterministically).
    fn compute(&mut self, _rank: u32, _token: u64, _begin_ns: u64, _end_ns: u64, _gpu: bool) {}
    /// A collective-phase boundary mark.
    fn phase(&mut self, _rank: u32, _phase: u32, _begin: bool, _t_ns: u64) {}
    /// A sampled gauge value.
    fn gauge(&mut self, _t_ns: u64, _metric: GaugeMetric, _index: u32, _value: f64) {}
    /// A health-monitor alert fired at a snapshot boundary (only when a
    /// [`Monitor`](crate::Monitor) is attached alongside the recorder).
    fn alert(&mut self, _a: crate::monitor::HealthAlert) {}
    /// The run completed; return the accumulated data, if any.
    fn finish(&mut self, _per_rank_finish_ns: &[u64]) -> Option<ObsData> {
        None
    }
    /// The bounded-memory run summary, if this sink aggregates online
    /// (see [`StreamRecorder`](crate::StreamRecorder)). Called by the
    /// runtime right after [`Recorder::finish`].
    fn finish_summary(&mut self) -> Option<ObsSummary> {
        None
    }
    /// The flight-recorder tail as a Chrome-trace fragment, if this sink
    /// keeps one. Called by the runtime on a stall diagnosis or a failed
    /// audit — the recorder may be mid-run, so implementations must not
    /// assume [`Recorder::finish`] ran.
    fn flight_dump(&mut self) -> Option<String> {
        None
    }
}

/// The default sink: recording off, every probe a no-op.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {}

/// Accumulates every probe into an [`ObsData`] for export and analysis.
#[derive(Debug, Default)]
pub struct MemRecorder {
    data: ObsData,
    interval_ns: Option<u64>,
    /// Network slot → index into `data.flows` of the latest flow that
    /// occupied it (slots are reused).
    slot_flows: Vec<u32>,
}

impl MemRecorder {
    /// Record spans only (no gauge sampling).
    pub fn new() -> MemRecorder {
        MemRecorder::default()
    }

    /// Record spans and sample gauges every `interval_ns` of sim time.
    pub fn with_metrics(interval_ns: u64) -> MemRecorder {
        MemRecorder {
            interval_ns: Some(interval_ns.max(1)),
            ..MemRecorder::default()
        }
    }

    fn msg_mut(&mut self, msg: u64) -> &mut MsgRec {
        let i = msg as usize;
        if self.data.msgs.len() <= i {
            self.data.msgs.resize(i + 1, MsgRec::default());
        }
        &mut self.data.msgs[i]
    }

    fn slot_flow_mut(&mut self, slot: u32) -> Option<&mut FlowRec> {
        let idx = *self.slot_flows.get(slot as usize)?;
        self.data.flows.get_mut(idx as usize)
    }
}

impl Recorder for MemRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn metrics_interval(&self) -> Option<u64> {
        self.interval_ns
    }

    fn meta(&mut self, nranks: u32, link_labels: Vec<String>) {
        self.data.nranks = nranks;
        self.data.link_labels = link_labels;
        self.data.metrics_interval_ns = self.interval_ns.unwrap_or(0);
    }

    fn link_params(&mut self, caps: Vec<f64>, lat_ns: Vec<u64>) {
        self.data.link_caps = caps;
        self.data.link_lat_ns = lat_ns;
    }

    fn rank_windows(&mut self, rank: u32, noise: Vec<(u64, u64)>, stalls: Vec<(u64, u64)>) {
        let i = rank as usize;
        if self.data.noise_windows.len() <= i {
            self.data.noise_windows.resize(i + 1, Vec::new());
            self.data.stall_windows.resize(i + 1, Vec::new());
        }
        self.data.noise_windows[i] = noise;
        self.data.stall_windows[i] = stalls;
    }

    fn msg_posted(
        &mut self,
        msg: u64,
        src: u32,
        dst: u32,
        tag: u32,
        bytes: u64,
        eager: bool,
        t_ns: u64,
    ) {
        let rec = self.msg_mut(msg);
        rec.src = src;
        rec.dst = dst;
        rec.tag = tag;
        rec.bytes = bytes;
        rec.eager = eager;
        rec.posted_ns = Some(t_ns);
    }

    fn msg_event(&mut self, msg: u64, ev: MsgEvent, t_ns: u64) {
        let rec = self.msg_mut(msg);
        match ev {
            MsgEvent::RtsArrived => rec.rts_arrived_ns = Some(t_ns),
            MsgEvent::CtsLaunch => rec.cts_launch_ns = Some(t_ns),
            MsgEvent::CtsArrived => rec.cts_arrived_ns = Some(t_ns),
            MsgEvent::DataLaunch => rec.data_launch_ns = Some(t_ns),
            MsgEvent::Drained => rec.drained_ns = Some(t_ns),
            MsgEvent::Delivered => rec.delivered_ns = Some(t_ns),
            MsgEvent::Matched {
                posted_ns,
                unexpected,
            } => {
                rec.matched_ns = Some(t_ns);
                rec.recv_posted_ns = posted_ns;
                rec.unexpected = unexpected;
            }
            MsgEvent::RecvReady => rec.recv_ready_ns = Some(t_ns),
            MsgEvent::Dropped => rec.drops += 1,
            MsgEvent::Retransmit => rec.retransmits += 1,
            MsgEvent::Acked => rec.acked_ns = Some(t_ns),
        }
    }

    fn flow_start(&mut self, slot: u32, rec: FlowStart, links: &[u32]) {
        let idx = self.data.flows.len() as u32;
        self.data.flows.push(FlowRec {
            class: rec.class,
            msg: rec.msg,
            rank: rec.rank,
            token: rec.token,
            bytes: rec.bytes,
            links: links.to_vec(),
            launch_ns: rec.t_ns,
            drained_ns: None,
            delivered_ns: None,
        });
        let s = slot as usize;
        if self.slot_flows.len() <= s {
            self.slot_flows.resize(s + 1, u32::MAX);
        }
        self.slot_flows[s] = idx;
    }

    fn flow_drained(&mut self, slot: u32, t_ns: u64) {
        if let Some(f) = self.slot_flow_mut(slot) {
            f.drained_ns = Some(t_ns);
        }
    }

    fn flow_delivered(&mut self, slot: u32, t_ns: u64) {
        if let Some(f) = self.slot_flow_mut(slot) {
            if f.drained_ns.is_none() {
                // Zero-byte control flows skip the drain step.
                f.drained_ns = Some(t_ns);
            }
            f.delivered_ns = Some(t_ns);
        }
    }

    fn dispatch(&mut self, rank: u32, begin_ns: u64, end_ns: u64, trigger: Trigger) {
        self.data.dispatches.push(DispatchSpan {
            rank,
            begin_ns,
            end_ns,
            trigger,
        });
    }

    fn protocol(&mut self, rank: u32, begin_ns: u64, end_ns: u64, kind: ProtoKind, msg: u64) {
        self.data.protocols.push(ProtoSpan {
            rank,
            begin_ns,
            end_ns,
            kind,
            msg,
        });
    }

    fn compute(&mut self, rank: u32, token: u64, begin_ns: u64, end_ns: u64, gpu: bool) {
        self.data.computes.push(ComputeRec {
            rank,
            token,
            begin_ns,
            end_ns,
            gpu,
        });
    }

    fn phase(&mut self, rank: u32, phase: u32, begin: bool, t_ns: u64) {
        self.data.phases.push(PhaseRec {
            rank,
            phase,
            begin,
            t_ns,
        });
    }

    fn gauge(&mut self, t_ns: u64, metric: GaugeMetric, index: u32, value: f64) {
        self.data.gauges.push(GaugeRec {
            t_ns,
            metric,
            index,
            value,
        });
    }

    fn alert(&mut self, a: crate::monitor::HealthAlert) {
        self.data.alerts.push(a);
    }

    fn finish(&mut self, per_rank_finish_ns: &[u64]) -> Option<ObsData> {
        self.data.per_rank_finish_ns = per_rank_finish_ns.to_vec();
        Some(std::mem::take(&mut self.data))
    }
}

/// Static dispatch over the crate's recorders. The runtime stores this
/// instead of a bare `Box<dyn Recorder>` so every probe on the hot path
/// compiles to a predictable branch plus a direct call — an indirect
/// vtable call per probe is measurable at millions of probes per run,
/// especially on hosts with indirect-branch hardening. Sinks from
/// outside the crate still attach through the [`AnyRecorder::Dyn`] arm
/// at the old virtual-call cost.
pub enum AnyRecorder {
    /// Recording off (the default attachment).
    Null(NullRecorder),
    /// Full in-memory event recording ([`MemRecorder`]).
    Mem(Box<MemRecorder>),
    /// Bounded-memory streaming aggregation
    /// ([`StreamRecorder`](crate::stream::StreamRecorder)).
    Stream(Box<crate::stream::StreamRecorder>),
    /// Any other sink, dispatched virtually.
    Dyn(Box<dyn Recorder>),
}

/// Forward one call to whichever recorder is inside.
macro_rules! fan_out {
    ($self:ident, $r:ident => $call:expr) => {
        match $self {
            AnyRecorder::Null($r) => $call,
            AnyRecorder::Mem($r) => $call,
            AnyRecorder::Stream($r) => $call,
            AnyRecorder::Dyn($r) => $call,
        }
    };
}

impl Recorder for AnyRecorder {
    #[inline]
    fn enabled(&self) -> bool {
        fan_out!(self, r => r.enabled())
    }

    #[inline]
    fn metrics_interval(&self) -> Option<u64> {
        fan_out!(self, r => r.metrics_interval())
    }

    #[inline]
    fn meta(&mut self, nranks: u32, link_labels: Vec<String>) {
        fan_out!(self, r => r.meta(nranks, link_labels))
    }

    #[inline]
    fn link_params(&mut self, caps: Vec<f64>, lat_ns: Vec<u64>) {
        fan_out!(self, r => r.link_params(caps, lat_ns))
    }

    #[inline]
    fn rank_windows(&mut self, rank: u32, noise: Vec<(u64, u64)>, stalls: Vec<(u64, u64)>) {
        fan_out!(self, r => r.rank_windows(rank, noise, stalls))
    }

    #[inline]
    fn msg_posted(
        &mut self,
        msg: u64,
        src: u32,
        dst: u32,
        tag: u32,
        bytes: u64,
        eager: bool,
        t_ns: u64,
    ) {
        fan_out!(self, r => r.msg_posted(msg, src, dst, tag, bytes, eager, t_ns))
    }

    #[inline]
    fn msg_event(&mut self, msg: u64, ev: MsgEvent, t_ns: u64) {
        fan_out!(self, r => r.msg_event(msg, ev, t_ns))
    }

    #[inline]
    fn flow_start(&mut self, slot: u32, rec: FlowStart, links: &[u32]) {
        fan_out!(self, r => r.flow_start(slot, rec, links))
    }

    #[inline]
    fn flow_drained(&mut self, slot: u32, t_ns: u64) {
        fan_out!(self, r => r.flow_drained(slot, t_ns))
    }

    #[inline]
    fn flow_delivered(&mut self, slot: u32, t_ns: u64) {
        fan_out!(self, r => r.flow_delivered(slot, t_ns))
    }

    #[inline]
    fn dispatch(&mut self, rank: u32, begin_ns: u64, end_ns: u64, trigger: Trigger) {
        fan_out!(self, r => r.dispatch(rank, begin_ns, end_ns, trigger))
    }

    #[inline]
    fn protocol(&mut self, rank: u32, begin_ns: u64, end_ns: u64, kind: ProtoKind, msg: u64) {
        fan_out!(self, r => r.protocol(rank, begin_ns, end_ns, kind, msg))
    }

    #[inline]
    fn compute(&mut self, rank: u32, token: u64, begin_ns: u64, end_ns: u64, gpu: bool) {
        fan_out!(self, r => r.compute(rank, token, begin_ns, end_ns, gpu))
    }

    #[inline]
    fn phase(&mut self, rank: u32, phase: u32, begin: bool, t_ns: u64) {
        fan_out!(self, r => r.phase(rank, phase, begin, t_ns))
    }

    #[inline]
    fn gauge(&mut self, t_ns: u64, metric: GaugeMetric, index: u32, value: f64) {
        fan_out!(self, r => r.gauge(t_ns, metric, index, value))
    }

    #[inline]
    fn alert(&mut self, a: crate::monitor::HealthAlert) {
        fan_out!(self, r => r.alert(a))
    }

    fn finish(&mut self, per_rank_finish_ns: &[u64]) -> Option<ObsData> {
        fan_out!(self, r => r.finish(per_rank_finish_ns))
    }

    fn finish_summary(&mut self) -> Option<ObsSummary> {
        fan_out!(self, r => r.finish_summary())
    }

    fn flight_dump(&mut self) -> Option<String> {
        fan_out!(self, r => r.flight_dump())
    }
}

impl From<NullRecorder> for AnyRecorder {
    fn from(r: NullRecorder) -> AnyRecorder {
        AnyRecorder::Null(r)
    }
}

impl From<MemRecorder> for AnyRecorder {
    fn from(r: MemRecorder) -> AnyRecorder {
        AnyRecorder::Mem(Box::new(r))
    }
}

impl From<crate::stream::StreamRecorder> for AnyRecorder {
    fn from(r: crate::stream::StreamRecorder) -> AnyRecorder {
        AnyRecorder::Stream(Box::new(r))
    }
}

impl From<Box<MemRecorder>> for AnyRecorder {
    fn from(r: Box<MemRecorder>) -> AnyRecorder {
        AnyRecorder::Mem(r)
    }
}

impl From<Box<crate::stream::StreamRecorder>> for AnyRecorder {
    fn from(r: Box<crate::stream::StreamRecorder>) -> AnyRecorder {
        AnyRecorder::Stream(r)
    }
}

impl From<Box<dyn Recorder>> for AnyRecorder {
    fn from(r: Box<dyn Recorder>) -> AnyRecorder {
        AnyRecorder::Dyn(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_recorder_is_disabled_and_returns_nothing() {
        let mut r = NullRecorder;
        assert!(!r.enabled());
        assert!(r.metrics_interval().is_none());
        r.dispatch(0, 0, 10, Trigger::Start);
        assert!(r.finish(&[10]).is_none());
    }

    #[test]
    fn mem_recorder_accumulates_msg_lifetime() {
        let mut r = MemRecorder::new();
        assert!(r.enabled());
        r.msg_posted(0, 1, 2, 7, 4096, true, 100);
        r.msg_event(
            0,
            MsgEvent::Matched {
                posted_ns: Some(50),
                unexpected: false,
            },
            400,
        );
        r.msg_event(0, MsgEvent::RecvReady, 400);
        let data = r.finish(&[500, 600]).unwrap();
        assert_eq!(data.msgs.len(), 1);
        let m = &data.msgs[0];
        assert_eq!((m.src, m.dst, m.bytes), (1, 2, 4096));
        assert_eq!(m.recv_posted_ns, Some(50));
        assert_eq!(m.recv_ready_ns, Some(400));
        assert!(!m.unexpected);
        assert_eq!(data.makespan_ns(), 600);
    }

    #[test]
    fn slot_reuse_tracks_the_latest_flow() {
        let mut r = MemRecorder::new();
        let start = |t| FlowStart {
            class: FlowClass::Eager,
            msg: Some(0),
            rank: 0,
            token: 0,
            bytes: 8,
            t_ns: t,
        };
        r.flow_start(3, start(10), &[1]);
        r.flow_drained(3, 20);
        r.flow_delivered(3, 25);
        r.flow_start(3, start(30), &[1]); // slot reused
        r.flow_delivered(3, 45);
        let data = r.finish(&[50]).unwrap();
        assert_eq!(data.flows.len(), 2);
        assert_eq!(data.flows[0].delivered_ns, Some(25));
        assert_eq!(data.flows[1].delivered_ns, Some(45));
        // Zero-drain flows backfill drained at delivery.
        assert_eq!(data.flows[1].drained_ns, Some(45));
    }
}
