//! # adapt-obs — cross-layer observability for the simulator
//!
//! A zero-cost-when-disabled instrumentation layer threaded through the
//! event loop, the network engine, the MPI progress engine, and the
//! collectives runner:
//!
//! * **Structured spans** — typed begin/end records for event-loop
//!   dispatch, protocol actions (CTS handshakes, rendezvous data
//!   launches, unexpected-queue bookkeeping), per-message lifetimes
//!   (post → match → rendezvous → delivery → callback), compute/GPU
//!   work, and collective phases. All timestamps ride the deterministic
//!   simulation clock (integer nanoseconds), so recorded output is
//!   bit-reproducible across runs.
//! * **Time-series metrics** — sampled gauges (posted/unexpected queue
//!   depth, live-flow count, per-link utilization, event-queue
//!   occupancy) taken at fixed sim-time intervals.
//! * **Streaming telemetry** — the bounded-memory [`StreamRecorder`]
//!   folds every probe into fixed-size aggregates as it fires:
//!   mergeable log-bucketed [`Hist`]ograms (per-flow-class durations,
//!   per-message-stage latencies), a link×time utilization heatmap, and
//!   per-rank busy/idle accounting, exported as an [`ObsSummary`] via
//!   [`summary_json`] / [`summary_report`]. An optional
//!   [`FlightRecorder`] ring keeps the most recent spans and is dumped
//!   as a Chrome-trace fragment on a stall diagnosis or failed audit.
//! * **Exporters** — Chrome trace-event JSON ([`chrome_trace`],
//!   loadable in Perfetto / `chrome://tracing`, one track per rank and
//!   one per link) and a flat CSV metrics dump ([`metrics_csv`]).
//! * **Critical-path analysis** — [`critical_path`] walks span
//!   causality backwards from the last completing rank and attributes
//!   the makespan to layers (network, matching, protocol, callbacks,
//!   compute, blocked waiting).
//! * **What-if engine** — [`predict`] replays a recording under a
//!   virtual [`Intervention`] (noise removal, link rescale, Coz-style
//!   per-layer speedup) and predicts the counterfactual makespan;
//!   [`diff_runs`] attributes the makespan delta between two recordings
//!   across (layer × rank × phase) with no unexplained remainder. Both
//!   are exposed through the `obs-whatif` binary; recordings travel as
//!   JSON via [`to_json`]/[`from_json`].
//!
//! The runtime talks to the layer through the [`Recorder`] trait. The
//! default [`NullRecorder`] compiles every probe down to a single
//! predictable branch on a cached flag; [`MemRecorder`] accumulates an
//! [`ObsData`] for export and analysis. The contract the test suite
//! enforces: attaching any recorder must not move a single event — run
//! results are identical with recording on or off.

mod chrome;
mod critical;
mod diff;
mod flight;
mod hist;
mod json;
mod metrics;
mod monitor;
mod record;
mod recorder;
mod report;
mod stream;
mod validate;
mod whatif;

/// Resolve a link class debug label (`NicTx(3)`, `Backbone`) to a
/// topology name (`node3/nic-tx`, `backbone`). Reports and the health
/// monitor print these instead of raw class labels; unknown labels pass
/// through unchanged, so the mapping is safe on any input.
pub fn topo_label(class: &str) -> String {
    let (variant, arg) = match class.find('(') {
        Some(p) => (&class[..p], class[p + 1..].trim_end_matches(')')),
        None => (class, ""),
    };
    match variant {
        "Shm" => format!("socket{arg}/shm"),
        "InterSocket" => format!("node{arg}/xsocket"),
        "NicTx" => format!("node{arg}/nic-tx"),
        "NicRx" => format!("node{arg}/nic-rx"),
        "Backbone" => "backbone".to_string(),
        "PcieUp" => format!("socket{arg}/pcie-up"),
        "PcieDown" => format!("socket{arg}/pcie-down"),
        "NvLink" => format!("socket{arg}/nvlink"),
        "CoreTx" => format!("core{arg}/core-tx"),
        "CoreRx" => format!("core{arg}/core-rx"),
        _ => class.to_string(),
    }
}

pub use chrome::chrome_trace;
pub use critical::{critical_path, CriticalPath, Layer, Segment, LAYERS};
pub use diff::{diff_runs, DiffBucket, RunDiff};
pub use flight::{FlightRecorder, FlightSpan};
pub use hist::{nearest_rank, percentile, Hist, HIST_BUCKETS};
pub use json::{from_json, to_json, FORMAT};
pub use metrics::{metrics_csv, CSV_HEADER, FLOW_CLASSES};
pub use monitor::{
    health_json, health_report_text, AlertKind, HealthAlert, HealthReport, HealthView, Monitor,
    MonitorConfig, SnapshotInput, HEALTH_FORMAT, MAX_REPORT_ALERTS,
};
pub use record::{
    ComputeRec, DispatchSpan, FlowClass, FlowRec, GaugeMetric, GaugeRec, MsgRec, ObsData, PhaseRec,
    ProtoKind, ProtoSpan, Trigger,
};
pub use recorder::{AnyRecorder, FlowStart, MemRecorder, MsgEvent, NullRecorder, Recorder};
pub use report::{render_prediction, render_sweep, render_validation, speedup_sweep, SweepRow};
pub use stream::{summary_json, summary_report, ObsSummary, StreamRecorder, SUMMARY_FORMAT};
pub use validate::{
    parse_json, validate_chrome, validate_critical_report, validate_health, validate_metrics_csv,
    validate_summary, ChromeSummary, HealthCheck, Json, SummaryCheck,
};
pub use whatif::{parse_layer, predict, Intervention, Prediction};
