//! Flight recorder: a fixed-capacity ring of the most recent spans,
//! dumped as a Chrome-trace fragment for stall and audit post-mortems.
//!
//! The ring holds small fixed-size records — no strings, no per-event
//! allocation — and overwrites the oldest entry when full, so an
//! always-on recorder costs O(capacity) memory no matter how long the
//! run. When [`World::try_run`] returns a `StallDiagnosis` (or the
//! audit fails) the tail is rendered with [`FlightRecorder::
//! chrome_fragment`]: the last thing every rank was doing, loadable in
//! Perfetto next to the watchdog's per-rank stuck counts.
//!
//! Each ring entry is a *complete* record (begin and end together), so
//! the fragment only ever emits complete `"X"` spans and zero-duration
//! markers — truncation can never orphan an async begin/end pair, and
//! the output always passes [`validate_chrome`](crate::validate::
//! validate_chrome).

use crate::chrome::{esc, ts};

/// One ring entry. Labels are `&'static str` (the stable probe labels),
/// keeping entries `Copy` and allocation-free.
#[derive(Clone, Copy, Debug)]
pub enum FlightSpan {
    /// A handler dispatch span on a rank CPU.
    Dispatch {
        /// Executing rank.
        rank: u32,
        /// Span start (ns).
        begin_ns: u64,
        /// Span end (ns).
        end_ns: u64,
        /// Trigger label.
        label: &'static str,
    },
    /// A protocol-action span on a rank CPU.
    Proto {
        /// Executing rank.
        rank: u32,
        /// Span start (ns).
        begin_ns: u64,
        /// Span end (ns).
        end_ns: u64,
        /// Protocol-kind label.
        label: &'static str,
        /// Owning message.
        msg: u64,
    },
    /// A compute/GPU work span.
    Compute {
        /// Executing rank.
        rank: u32,
        /// Work token.
        token: u64,
        /// Span start (ns).
        begin_ns: u64,
        /// Span end (ns).
        end_ns: u64,
        /// GPU-stream work (vs host compute).
        gpu: bool,
    },
    /// A message lifetime step (zero-duration marker).
    Msg {
        /// Message id.
        msg: u64,
        /// Event label.
        label: &'static str,
        /// Instant (ns).
        t_ns: u64,
    },
    /// A flow launch or delivery (zero-duration marker).
    Flow {
        /// Network slot.
        slot: u32,
        /// Flow-class label.
        label: &'static str,
        /// Bytes carried (launches only).
        bytes: u64,
        /// Instant (ns).
        t_ns: u64,
        /// Delivery (`true`) or launch (`false`).
        end: bool,
    },
    /// A health-monitor alert (zero-duration marker).
    Alert {
        /// Alert-kind label ([`AlertKind::label`](crate::AlertKind)).
        label: &'static str,
        /// Rank or link id the detector fired on.
        subject: u32,
        /// Snapshot instant (ns).
        t_ns: u64,
    },
}

/// Fixed-capacity span ring; see the module docs.
pub struct FlightRecorder {
    buf: Vec<FlightSpan>,
    cap: usize,
    /// Next write position; wraps at `cap`.
    next: usize,
    /// Total spans ever pushed (so `dropped = pushed - len`).
    pushed: u64,
}

impl FlightRecorder {
    /// A ring holding the most recent `capacity` spans (min 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        let cap = capacity.max(1);
        FlightRecorder {
            buf: Vec::with_capacity(cap),
            cap,
            next: 0,
            pushed: 0,
        }
    }

    /// Record one span, overwriting the oldest when full.
    pub fn push(&mut self, s: FlightSpan) {
        if self.buf.len() < self.cap {
            self.buf.push(s);
        } else {
            self.buf[self.next] = s;
        }
        self.next = (self.next + 1) % self.cap;
        self.pushed += 1;
    }

    /// Spans currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Spans overwritten (lost to the ring bound).
    pub fn dropped(&self) -> u64 {
        self.pushed - self.buf.len() as u64
    }

    /// Ring contents, oldest first.
    fn tail(&self) -> impl Iterator<Item = &FlightSpan> {
        let split = if self.buf.len() < self.cap {
            0
        } else {
            self.next
        };
        self.buf[split..].iter().chain(self.buf[..split].iter())
    }

    /// Render the tail as a self-contained Chrome-trace JSON document.
    /// CPU spans land on per-rank tracks (pid 1); message and flow
    /// markers on dedicated tracks (pid 3); compute spans are complete
    /// `"X"` events on a separate compute process (pid 4) so their
    /// overlap with CPU spans can never violate track nesting.
    pub fn chrome_fragment(&self) -> String {
        const PID_RANKS: u32 = 1;
        const PID_MARKS: u32 = 3;
        const PID_COMPUTE: u32 = 4;
        let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n");
        let mut first = true;
        let mut ev = |out: &mut String, body: String| {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push('{');
            out.push_str(&body);
            out.push('}');
        };
        let meta = |pid: u32, name: &str| {
            format!(
                "\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\
                 \"args\":{{\"name\":\"{name}\"}}"
            )
        };
        ev(&mut out, meta(PID_RANKS, "ranks (flight tail)"));
        ev(&mut out, meta(PID_MARKS, "messages and flows"));
        ev(&mut out, meta(PID_COMPUTE, "compute"));
        let x = |name: &str, cat: &str, pid: u32, tid: u32, b: u64, e: u64, args: &str| {
            format!(
                "\"name\":\"{}\",\"cat\":\"{cat}\",\"ph\":\"X\",\"pid\":{pid},\
                 \"tid\":{tid},\"ts\":{},\"dur\":{},\"args\":{{{args}}}",
                esc(name),
                ts(b),
                ts(e.saturating_sub(b)),
            )
        };
        // Compute spans get one track each (tid = arrival order):
        // concurrent compute/GPU work on one rank may overlap, which a
        // shared track's nesting check would reject.
        let mut compute_tid = 0u32;
        for s in self.tail() {
            let body = match *s {
                FlightSpan::Dispatch {
                    rank,
                    begin_ns,
                    end_ns,
                    label,
                } => x(label, "dispatch", PID_RANKS, rank, begin_ns, end_ns, ""),
                FlightSpan::Proto {
                    rank,
                    begin_ns,
                    end_ns,
                    label,
                    msg,
                } => x(
                    label,
                    "protocol",
                    PID_RANKS,
                    rank,
                    begin_ns,
                    end_ns,
                    &format!("\"msg\":{msg}"),
                ),
                FlightSpan::Compute {
                    rank,
                    token,
                    begin_ns,
                    end_ns,
                    gpu,
                } => {
                    compute_tid += 1;
                    x(
                        if gpu { "gpu" } else { "compute" },
                        "compute",
                        PID_COMPUTE,
                        compute_tid - 1,
                        begin_ns,
                        end_ns,
                        &format!("\"rank\":{rank},\"token\":{token}"),
                    )
                }
                FlightSpan::Msg { msg, label, t_ns } => {
                    let name = format!("m{msg} {label}");
                    x(&name, "msg", PID_MARKS, 0, t_ns, t_ns, "")
                }
                FlightSpan::Flow {
                    slot,
                    label,
                    bytes,
                    t_ns,
                    end,
                } => {
                    let name = format!(
                        "{label} f{slot} {}",
                        if end { "delivered" } else { "launch" }
                    );
                    x(
                        &name,
                        "flow",
                        PID_MARKS,
                        1,
                        t_ns,
                        t_ns,
                        &format!("\"bytes\":{bytes}"),
                    )
                }
                FlightSpan::Alert {
                    label,
                    subject,
                    t_ns,
                } => x(
                    label,
                    "health",
                    PID_MARKS,
                    2,
                    t_ns,
                    t_ns,
                    &format!("\"subject\":{subject}"),
                ),
            };
            ev(&mut out, body);
        }
        // How much of the run the tail covers, as counters at ts 0.
        let c = format!(
            "\"name\":\"flight_spans_dropped\",\"ph\":\"C\",\"pid\":{PID_MARKS},\
             \"ts\":0.000,\"args\":{{\"value\":{}}}",
            self.dropped()
        );
        ev(&mut out, c);
        out.push_str("\n]}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dispatch(rank: u32, b: u64, e: u64) -> FlightSpan {
        FlightSpan::Dispatch {
            rank,
            begin_ns: b,
            end_ns: e,
            label: "start",
        }
    }

    #[test]
    fn ring_keeps_the_most_recent_spans() {
        let mut f = FlightRecorder::new(4);
        for i in 0..10u64 {
            f.push(dispatch(0, i * 10, i * 10 + 5));
        }
        assert_eq!(f.len(), 4);
        assert_eq!(f.dropped(), 6);
        let begins: Vec<u64> = f
            .tail()
            .map(|s| match s {
                FlightSpan::Dispatch { begin_ns, .. } => *begin_ns,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(begins, vec![60, 70, 80, 90], "oldest-first tail");
    }

    #[test]
    fn fragment_passes_the_chrome_validator_even_when_truncated() {
        let mut f = FlightRecorder::new(8);
        for i in 0..50u64 {
            f.push(dispatch((i % 4) as u32, i * 100, i * 100 + 40));
            f.push(FlightSpan::Msg {
                msg: i,
                label: "delivered",
                t_ns: i * 100 + 20,
            });
            f.push(FlightSpan::Compute {
                rank: (i % 4) as u32,
                token: i,
                begin_ns: i * 100 + 10,
                end_ns: i * 100 + 90, // overlaps the next dispatch
                gpu: i % 2 == 0,
            });
            f.push(FlightSpan::Flow {
                slot: 3,
                label: "eager",
                bytes: 64,
                t_ns: i * 100 + 30,
                end: false,
            });
            f.push(FlightSpan::Alert {
                label: "straggler",
                subject: (i % 4) as u32,
                t_ns: i * 100 + 35,
            });
        }
        let json = f.chrome_fragment();
        let summary = crate::validate::validate_chrome(&json).expect("fragment must validate");
        assert!(summary.complete_spans > 0);
        assert!(json.contains("flight_spans_dropped"));
        assert!(json.contains("\"cat\":\"health\""), "alert markers render");
    }

    #[test]
    fn empty_ring_renders_a_valid_document() {
        let f = FlightRecorder::new(16);
        assert!(f.is_empty());
        crate::validate::validate_chrome(&f.chrome_fragment()).unwrap();
    }
}
