//! The recorded data model: everything a run leaves behind when a
//! [`MemRecorder`](crate::MemRecorder) is attached.
//!
//! All timestamps are simulation time in integer nanoseconds — the same
//! deterministic clock the event queue orders on — so two runs of the
//! same configuration produce byte-identical records. Ranks, links,
//! message ids, and tokens are plain integers to keep this crate free of
//! simulator dependencies (the runtime adapts its own types at the
//! [`Recorder`](crate::Recorder) boundary).

/// What woke a rank's progress engine for one handler dispatch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Trigger {
    /// The initial `on_start` dispatch at simulation start.
    Start,
    /// An `isend` completed (its data flow drained).
    SendDone {
        /// Message id of the completed send.
        msg: u64,
    },
    /// An `irecv` completed (data arrived and matched).
    RecvDone {
        /// Message id of the completed receive.
        msg: u64,
    },
    /// A blocking compute finished.
    ComputeDone {
        /// Token of the compute operation.
        token: u64,
    },
    /// An asynchronous copy finished.
    CopyDone {
        /// Token of the copy operation.
        token: u64,
    },
    /// A GPU-stream operation finished.
    GpuDone {
        /// Token of the GPU operation.
        token: u64,
    },
}

impl Trigger {
    /// Stable lowercase label (trace event name).
    pub fn label(&self) -> &'static str {
        match self {
            Trigger::Start => "start",
            Trigger::SendDone { .. } => "send_done",
            Trigger::RecvDone { .. } => "recv_done",
            Trigger::ComputeDone { .. } => "compute_done",
            Trigger::CopyDone { .. } => "copy_done",
            Trigger::GpuDone { .. } => "gpu_done",
        }
    }
}

/// One handler dispatch of the progress engine: the span from the event
/// being picked up to the rank's CPU finishing the handler and every
/// operation cost it posted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DispatchSpan {
    /// Rank whose handler ran.
    pub rank: u32,
    /// Dispatch instant (ns).
    pub begin_ns: u64,
    /// Handler CPU completion instant (ns, noise stretching included).
    pub end_ns: u64,
    /// What woke the handler.
    pub trigger: Trigger,
}

/// Protocol actions the progress engine performs outside program
/// handlers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProtoKind {
    /// Receiver accepted a rendezvous and sent CTS.
    CtsSend,
    /// Sender received CTS and launched the data flow.
    DataLaunch,
    /// An arrival found no posted receive and was queued unexpected.
    Unexpected,
}

impl ProtoKind {
    /// Stable lowercase label (trace event name).
    pub fn label(&self) -> &'static str {
        match self {
            ProtoKind::CtsSend => "cts_send",
            ProtoKind::DataLaunch => "data_launch",
            ProtoKind::Unexpected => "unexpected",
        }
    }
}

/// One protocol action span on a rank's CPU.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProtoSpan {
    /// Rank whose CPU did the work.
    pub rank: u32,
    /// Start instant (ns).
    pub begin_ns: u64,
    /// Completion instant (ns).
    pub end_ns: u64,
    /// Which protocol action.
    pub kind: ProtoKind,
    /// The message the action belongs to.
    pub msg: u64,
}

/// Full lifetime of one point-to-point message, indexed by message id.
/// Fields are `None` until (or unless) the corresponding protocol step
/// happens; eager messages never fill the rendezvous fields.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MsgRec {
    /// Sending rank.
    pub src: u32,
    /// Receiving rank.
    pub dst: u32,
    /// Message tag.
    pub tag: u32,
    /// Payload bytes.
    pub bytes: u64,
    /// Eager protocol (`true`) or rendezvous (`false`).
    pub eager: bool,
    /// Send posted (ns).
    pub posted_ns: Option<u64>,
    /// RTS control message reached the receiver (rendezvous only).
    pub rts_arrived_ns: Option<u64>,
    /// Receiver launched the CTS reply (rendezvous only).
    pub cts_launch_ns: Option<u64>,
    /// CTS reached the sender (rendezvous only).
    pub cts_arrived_ns: Option<u64>,
    /// Sender launched the payload flow (rendezvous only; eager data
    /// launches at `posted_ns`).
    pub data_launch_ns: Option<u64>,
    /// Payload fully injected (sender buffer reusable).
    pub drained_ns: Option<u64>,
    /// Payload fully delivered at the receiver.
    pub delivered_ns: Option<u64>,
    /// The matching receive's posting instant.
    pub recv_posted_ns: Option<u64>,
    /// Arrival matched a posted receive, or a posted receive matched the
    /// unexpected queue.
    pub matched_ns: Option<u64>,
    /// The message waited in an unexpected queue (arrived before its
    /// receive was posted).
    pub unexpected: bool,
    /// RecvDone scheduled for the receiving program (after any
    /// unexpected-copy cost).
    pub recv_ready_ns: Option<u64>,
    /// Flows of this message lost to injected faults.
    pub drops: u32,
    /// Reliability-layer retransmissions for this message.
    pub retransmits: u32,
    /// First acknowledgement back at the sender (reliable runs only).
    pub acked_ns: Option<u64>,
}

/// Protocol class of a network flow.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlowClass {
    /// Rendezvous ready-to-send control message (zero bytes).
    Rts,
    /// Rendezvous clear-to-send control message (zero bytes).
    Cts,
    /// Eager payload.
    Eager,
    /// Rendezvous payload.
    Rndv,
    /// Local asynchronous copy (e.g. GPU staging DMA).
    Copy,
    /// Reliability-layer acknowledgement (zero bytes, receiver to sender).
    Ack,
}

impl FlowClass {
    /// Every class, in canonical index order: a class's position here is
    /// its `index` in the metrics-CSV summary rows and the streaming
    /// summary's per-class tables.
    pub const ALL: [FlowClass; 6] = [
        FlowClass::Rts,
        FlowClass::Cts,
        FlowClass::Eager,
        FlowClass::Rndv,
        FlowClass::Copy,
        FlowClass::Ack,
    ];

    /// Position in [`FlowClass::ALL`] in O(1) — the declaration order is
    /// the canonical order, which `flow_class_index_is_its_all_position`
    /// pins.
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Stable lowercase label (trace event name).
    pub fn label(&self) -> &'static str {
        match self {
            FlowClass::Rts => "rts",
            FlowClass::Cts => "cts",
            FlowClass::Eager => "eager",
            FlowClass::Rndv => "rndv",
            FlowClass::Copy => "copy",
            FlowClass::Ack => "ack",
        }
    }
}

/// One network flow: a transfer occupying every link on its path from
/// launch until it drains, delivered one path latency later.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlowRec {
    /// Protocol class.
    pub class: FlowClass,
    /// Owning message (`None` for copies).
    pub msg: Option<u64>,
    /// Initiating rank (sender for RTS/data, receiver for CTS, owner for
    /// copies).
    pub rank: u32,
    /// Copy token (copies only; zero otherwise).
    pub token: u64,
    /// Bytes carried.
    pub bytes: u64,
    /// Link ids along the path, in order.
    pub links: Vec<u32>,
    /// Launch instant (ns).
    pub launch_ns: u64,
    /// Fully injected (ns).
    pub drained_ns: Option<u64>,
    /// Fully delivered (ns).
    pub delivered_ns: Option<u64>,
}

/// One compute or GPU-stream work span.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ComputeRec {
    /// Rank that did (or enqueued) the work.
    pub rank: u32,
    /// Completion token of the operation.
    pub token: u64,
    /// Work start (ns).
    pub begin_ns: u64,
    /// Work completion (ns).
    pub end_ns: u64,
    /// GPU-stream work (`true`) or CPU compute (`false`).
    pub gpu: bool,
}

/// A collective-phase boundary mark posted by a phased program.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PhaseRec {
    /// Rank reporting the boundary.
    pub rank: u32,
    /// Phase index within the rank's phase chain.
    pub phase: u32,
    /// Phase start (`true`) or phase completion (`false`).
    pub begin: bool,
    /// The boundary instant (ns).
    pub t_ns: u64,
}

/// What a sampled gauge measures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GaugeMetric {
    /// Total posted receives across all ranks.
    PostedDepth,
    /// Total unexpected messages (eager + RTS) across all ranks.
    UnexpectedDepth,
    /// Flows currently in the network.
    LiveFlows,
    /// Events pending in the simulator queue.
    EventQueueLen,
    /// One link's utilization (drain rate over capacity, 0..=1); `index`
    /// is the link id. Idle links are not sampled.
    LinkUtil,
    /// One link's active-flow count; `index` is the link id.
    LinkFlows,
    /// Cumulative conservative-PDES epochs crossed by the sharded
    /// simulation core. Sampled only when sharding is active.
    ParEpochs,
    /// Cumulative events scheduled across a shard boundary. Sampled only
    /// when sharding is active.
    CrossShardEvents,
}

impl GaugeMetric {
    /// Stable lowercase label (CSV column value / counter name).
    pub fn label(&self) -> &'static str {
        match self {
            GaugeMetric::PostedDepth => "posted_depth",
            GaugeMetric::UnexpectedDepth => "unexpected_depth",
            GaugeMetric::LiveFlows => "live_flows",
            GaugeMetric::EventQueueLen => "event_queue_len",
            GaugeMetric::LinkUtil => "link_util",
            GaugeMetric::LinkFlows => "link_flows",
            GaugeMetric::ParEpochs => "par_epochs",
            GaugeMetric::CrossShardEvents => "cross_shard_events",
        }
    }
}

/// One time-series sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GaugeRec {
    /// Sample instant (ns) — a multiple of the metrics interval.
    pub t_ns: u64,
    /// What was measured.
    pub metric: GaugeMetric,
    /// Sub-index (link id for per-link metrics, 0 otherwise).
    pub index: u32,
    /// The sampled value.
    pub value: f64,
}

/// Everything one recorded run leaves behind.
#[derive(Clone, Debug, Default)]
pub struct ObsData {
    /// Number of ranks in the job.
    pub nranks: u32,
    /// Human label per link id (e.g. `NicTx(3)`).
    pub link_labels: Vec<String>,
    /// Pristine capacity per link id (bytes/sec). Empty on recordings
    /// made before the what-if engine existed.
    pub link_caps: Vec<f64>,
    /// Pristine latency per link id (ns). Same length as `link_caps`.
    pub link_lat_ns: Vec<u64>,
    /// Per-rank OS-noise preemption windows `(start_ns, end_ns)`, sorted
    /// and non-overlapping, generated out to past the makespan so a
    /// counterfactual replay can stretch work beyond the recorded end.
    pub noise_windows: Vec<Vec<(u64, u64)>>,
    /// Per-rank injected stall windows from the fault plan (same shape).
    pub stall_windows: Vec<Vec<(u64, u64)>>,
    /// Gauge sampling interval (ns); zero when sampling was off.
    pub metrics_interval_ns: u64,
    /// Message lifetimes, indexed by message id.
    pub msgs: Vec<MsgRec>,
    /// Network flows, in launch order.
    pub flows: Vec<FlowRec>,
    /// Handler dispatch spans, in execution order.
    pub dispatches: Vec<DispatchSpan>,
    /// Protocol action spans, in execution order.
    pub protocols: Vec<ProtoSpan>,
    /// Compute/GPU spans, in posting order.
    pub computes: Vec<ComputeRec>,
    /// Collective-phase boundary marks, in execution order.
    pub phases: Vec<PhaseRec>,
    /// Sampled gauges, in sampling order.
    pub gauges: Vec<GaugeRec>,
    /// Health-monitor alerts, in firing order. Empty unless a monitor
    /// was attached (recordings made without one carry no field).
    pub alerts: Vec<crate::monitor::HealthAlert>,
    /// Per-rank finish times (ns).
    pub per_rank_finish_ns: Vec<u64>,
}

impl ObsData {
    /// The run's makespan in nanoseconds (latest rank finish).
    pub fn makespan_ns(&self) -> u64 {
        self.per_rank_finish_ns.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::FlowClass;

    #[test]
    fn flow_class_index_is_its_all_position() {
        for (i, c) in FlowClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i, "{c:?} moved out of canonical order");
        }
    }
}
