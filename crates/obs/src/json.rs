//! `ObsData` ⇄ JSON: the on-disk recording format consumed by
//! `obs-whatif` (and produced by `adapt-cli --obs-out`).
//!
//! Hand-rolled writer plus the crate's own JSON parser
//! ([`parse_json`](crate::validate::parse_json)) keep the crate
//! dependency-free. Integer fields round-trip exactly below 2^53 (all
//! simulation timestamps are far below that); capacities are written in
//! Rust's shortest-round-trip float form.

use crate::record::{
    ComputeRec, DispatchSpan, FlowClass, FlowRec, GaugeMetric, GaugeRec, MsgRec, ObsData, PhaseRec,
    ProtoKind, ProtoSpan, Trigger,
};
use crate::validate::{parse_json, Json};

/// Format tag written into (and required from) every recording file.
pub const FORMAT: &str = "adapt-obs-v1";

// ---------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------

fn push_opt(out: &mut String, v: Option<u64>) {
    match v {
        Some(n) => out.push_str(&n.to_string()),
        None => out.push_str("null"),
    }
}

fn push_str_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_windows(out: &mut String, wins: &[Vec<(u64, u64)>]) {
    out.push('[');
    for (i, rank) in wins.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        for (j, (s, e)) in rank.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!("[{s},{e}]"));
        }
        out.push(']');
    }
    out.push(']');
}

fn trigger_parts(t: Trigger) -> (&'static str, u64) {
    match t {
        Trigger::Start => ("start", 0),
        Trigger::SendDone { msg } => ("send_done", msg),
        Trigger::RecvDone { msg } => ("recv_done", msg),
        Trigger::ComputeDone { token } => ("compute_done", token),
        Trigger::CopyDone { token } => ("copy_done", token),
        Trigger::GpuDone { token } => ("gpu_done", token),
    }
}

/// Serialize a recording to a JSON document (one line per record for
/// reviewable diffs of committed fixtures).
pub fn to_json(data: &ObsData) -> String {
    let mut o = String::with_capacity(4096);
    o.push_str("{\n");
    o.push_str(&format!("\"format\":\"{FORMAT}\",\n"));
    o.push_str(&format!("\"nranks\":{},\n", data.nranks));

    o.push_str("\"link_labels\":[");
    for (i, l) in data.link_labels.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        push_str_escaped(&mut o, l);
    }
    o.push_str("],\n");

    o.push_str("\"link_caps\":[");
    for (i, c) in data.link_caps.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        o.push_str(&format!("{c:?}"));
    }
    o.push_str("],\n");

    o.push_str("\"link_lat_ns\":[");
    for (i, l) in data.link_lat_ns.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        o.push_str(&l.to_string());
    }
    o.push_str("],\n");

    o.push_str("\"noise_windows\":");
    push_windows(&mut o, &data.noise_windows);
    o.push_str(",\n\"stall_windows\":");
    push_windows(&mut o, &data.stall_windows);
    o.push_str(",\n");
    o.push_str(&format!(
        "\"metrics_interval_ns\":{},\n",
        data.metrics_interval_ns
    ));

    o.push_str("\"msgs\":[");
    for (i, m) in data.msgs.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        o.push_str(&format!(
            "\n{{\"src\":{},\"dst\":{},\"tag\":{},\"bytes\":{},\"eager\":{},\"unexpected\":{},\
             \"drops\":{},\"retransmits\":{},",
            m.src, m.dst, m.tag, m.bytes, m.eager, m.unexpected, m.drops, m.retransmits
        ));
        for (key, v) in [
            ("posted_ns", m.posted_ns),
            ("rts_arrived_ns", m.rts_arrived_ns),
            ("cts_launch_ns", m.cts_launch_ns),
            ("cts_arrived_ns", m.cts_arrived_ns),
            ("data_launch_ns", m.data_launch_ns),
            ("drained_ns", m.drained_ns),
            ("delivered_ns", m.delivered_ns),
            ("recv_posted_ns", m.recv_posted_ns),
            ("matched_ns", m.matched_ns),
            ("recv_ready_ns", m.recv_ready_ns),
            ("acked_ns", m.acked_ns),
        ] {
            o.push_str(&format!("\"{key}\":"));
            push_opt(&mut o, v);
            o.push(',');
        }
        o.pop();
        o.push('}');
    }
    o.push_str("],\n");

    o.push_str("\"flows\":[");
    for (i, f) in data.flows.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        o.push_str(&format!("\n{{\"class\":\"{}\",\"msg\":", f.class.label()));
        push_opt(&mut o, f.msg);
        o.push_str(&format!(
            ",\"rank\":{},\"token\":{},\"bytes\":{},\"links\":[",
            f.rank, f.token, f.bytes
        ));
        for (j, l) in f.links.iter().enumerate() {
            if j > 0 {
                o.push(',');
            }
            o.push_str(&l.to_string());
        }
        o.push_str(&format!("],\"launch_ns\":{},\"drained_ns\":", f.launch_ns));
        push_opt(&mut o, f.drained_ns);
        o.push_str(",\"delivered_ns\":");
        push_opt(&mut o, f.delivered_ns);
        o.push('}');
    }
    o.push_str("],\n");

    o.push_str("\"dispatches\":[");
    for (i, d) in data.dispatches.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        let (kind, arg) = trigger_parts(d.trigger);
        o.push_str(&format!(
            "\n{{\"rank\":{},\"begin_ns\":{},\"end_ns\":{},\"trigger\":\"{kind}\",\"arg\":{arg}}}",
            d.rank, d.begin_ns, d.end_ns
        ));
    }
    o.push_str("],\n");

    o.push_str("\"protocols\":[");
    for (i, p) in data.protocols.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        o.push_str(&format!(
            "\n{{\"rank\":{},\"begin_ns\":{},\"end_ns\":{},\"kind\":\"{}\",\"msg\":{}}}",
            p.rank,
            p.begin_ns,
            p.end_ns,
            p.kind.label(),
            p.msg
        ));
    }
    o.push_str("],\n");

    o.push_str("\"computes\":[");
    for (i, c) in data.computes.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        o.push_str(&format!(
            "\n{{\"rank\":{},\"token\":{},\"begin_ns\":{},\"end_ns\":{},\"gpu\":{}}}",
            c.rank, c.token, c.begin_ns, c.end_ns, c.gpu
        ));
    }
    o.push_str("],\n");

    o.push_str("\"phases\":[");
    for (i, p) in data.phases.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        o.push_str(&format!(
            "\n{{\"rank\":{},\"phase\":{},\"begin\":{},\"t_ns\":{}}}",
            p.rank, p.phase, p.begin, p.t_ns
        ));
    }
    o.push_str("],\n");

    o.push_str("\"gauges\":[");
    for (i, g) in data.gauges.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        o.push_str(&format!(
            "\n{{\"t_ns\":{},\"metric\":\"{}\",\"index\":{},\"value\":{:?}}}",
            g.t_ns,
            g.metric.label(),
            g.index,
            g.value
        ));
    }
    o.push_str("],\n");

    // Health alerts only exist on monitored runs; the key is omitted
    // entirely (and optional on parse) so unmonitored recordings —
    // including every committed golden fixture — keep their exact bytes.
    if !data.alerts.is_empty() {
        o.push_str("\"alerts\":[");
        for (i, a) in data.alerts.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            o.push_str(&format!(
                "\n{{\"kind\":\"{}\",\"t_ns\":{},\"subject\":{},\"value\":{},\"threshold\":{}}}",
                a.kind.label(),
                a.t_ns,
                a.subject,
                a.value,
                a.threshold
            ));
        }
        o.push_str("],\n");
    }

    o.push_str("\"per_rank_finish_ns\":[");
    for (i, f) in data.per_rank_finish_ns.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        o.push_str(&f.to_string());
    }
    o.push_str("]\n}\n");
    o
}

// ---------------------------------------------------------------------
// Reading
// ---------------------------------------------------------------------

fn want<'a>(v: &'a Json, key: &str) -> Result<&'a Json, String> {
    v.get(key).ok_or_else(|| format!("missing field {key:?}"))
}

fn get_u64(v: &Json, key: &str) -> Result<u64, String> {
    want(v, key)?
        .as_num()
        .map(|n| n as u64)
        .ok_or_else(|| format!("field {key:?} is not a number"))
}

fn get_u32(v: &Json, key: &str) -> Result<u32, String> {
    Ok(get_u64(v, key)? as u32)
}

fn get_opt(v: &Json, key: &str) -> Result<Option<u64>, String> {
    match want(v, key)? {
        Json::Null => Ok(None),
        Json::Num(n) => Ok(Some(*n as u64)),
        _ => Err(format!("field {key:?} is neither null nor a number")),
    }
}

fn get_bool(v: &Json, key: &str) -> Result<bool, String> {
    match want(v, key)? {
        Json::Bool(b) => Ok(*b),
        _ => Err(format!("field {key:?} is not a bool")),
    }
}

fn get_str<'a>(v: &'a Json, key: &str) -> Result<&'a str, String> {
    want(v, key)?
        .as_str()
        .ok_or_else(|| format!("field {key:?} is not a string"))
}

fn get_arr<'a>(v: &'a Json, key: &str) -> Result<&'a [Json], String> {
    want(v, key)?
        .as_arr()
        .ok_or_else(|| format!("field {key:?} is not an array"))
}

fn parse_windows(v: &Json, key: &str) -> Result<Vec<Vec<(u64, u64)>>, String> {
    let mut out = Vec::new();
    for rank in get_arr(v, key)? {
        let rank = rank
            .as_arr()
            .ok_or_else(|| format!("{key}: rank entry is not an array"))?;
        let mut wins = Vec::with_capacity(rank.len());
        for w in rank {
            let pair = w
                .as_arr()
                .ok_or_else(|| format!("{key}: window is not a pair"))?;
            if pair.len() != 2 {
                return Err(format!("{key}: window is not a pair"));
            }
            let s = pair[0]
                .as_num()
                .ok_or_else(|| format!("{key}: bad start"))? as u64;
            let e = pair[1].as_num().ok_or_else(|| format!("{key}: bad end"))? as u64;
            wins.push((s, e));
        }
        out.push(wins);
    }
    Ok(out)
}

fn parse_trigger(kind: &str, arg: u64) -> Result<Trigger, String> {
    Ok(match kind {
        "start" => Trigger::Start,
        "send_done" => Trigger::SendDone { msg: arg },
        "recv_done" => Trigger::RecvDone { msg: arg },
        "compute_done" => Trigger::ComputeDone { token: arg },
        "copy_done" => Trigger::CopyDone { token: arg },
        "gpu_done" => Trigger::GpuDone { token: arg },
        other => return Err(format!("unknown trigger {other:?}")),
    })
}

fn parse_flow_class(s: &str) -> Result<FlowClass, String> {
    Ok(match s {
        "rts" => FlowClass::Rts,
        "cts" => FlowClass::Cts,
        "eager" => FlowClass::Eager,
        "rndv" => FlowClass::Rndv,
        "copy" => FlowClass::Copy,
        "ack" => FlowClass::Ack,
        other => return Err(format!("unknown flow class {other:?}")),
    })
}

fn parse_proto_kind(s: &str) -> Result<ProtoKind, String> {
    Ok(match s {
        "cts_send" => ProtoKind::CtsSend,
        "data_launch" => ProtoKind::DataLaunch,
        "unexpected" => ProtoKind::Unexpected,
        other => return Err(format!("unknown protocol kind {other:?}")),
    })
}

fn parse_gauge_metric(s: &str) -> Result<GaugeMetric, String> {
    Ok(match s {
        "posted_depth" => GaugeMetric::PostedDepth,
        "unexpected_depth" => GaugeMetric::UnexpectedDepth,
        "live_flows" => GaugeMetric::LiveFlows,
        "event_queue_len" => GaugeMetric::EventQueueLen,
        "link_util" => GaugeMetric::LinkUtil,
        "link_flows" => GaugeMetric::LinkFlows,
        "par_epochs" => GaugeMetric::ParEpochs,
        "cross_shard_events" => GaugeMetric::CrossShardEvents,
        other => return Err(format!("unknown gauge metric {other:?}")),
    })
}

/// Parse a recording from its JSON form.
pub fn from_json(text: &str) -> Result<ObsData, String> {
    let doc = parse_json(text)?;
    let format = get_str(&doc, "format")?;
    if format != FORMAT {
        return Err(format!("unsupported recording format {format:?}"));
    }
    let mut data = ObsData {
        nranks: get_u32(&doc, "nranks")?,
        metrics_interval_ns: get_u64(&doc, "metrics_interval_ns")?,
        noise_windows: parse_windows(&doc, "noise_windows")?,
        stall_windows: parse_windows(&doc, "stall_windows")?,
        ..ObsData::default()
    };
    for l in get_arr(&doc, "link_labels")? {
        data.link_labels
            .push(l.as_str().ok_or("link label is not a string")?.to_string());
    }
    for c in get_arr(&doc, "link_caps")? {
        data.link_caps
            .push(c.as_num().ok_or("link cap is not a number")?);
    }
    for l in get_arr(&doc, "link_lat_ns")? {
        data.link_lat_ns
            .push(l.as_num().ok_or("link latency is not a number")? as u64);
    }
    if data.link_caps.len() != data.link_labels.len()
        || data.link_lat_ns.len() != data.link_labels.len()
    {
        return Err("link parameter arrays disagree in length".into());
    }
    for m in get_arr(&doc, "msgs")? {
        data.msgs.push(MsgRec {
            src: get_u32(m, "src")?,
            dst: get_u32(m, "dst")?,
            tag: get_u32(m, "tag")?,
            bytes: get_u64(m, "bytes")?,
            eager: get_bool(m, "eager")?,
            unexpected: get_bool(m, "unexpected")?,
            drops: get_u32(m, "drops")?,
            retransmits: get_u32(m, "retransmits")?,
            posted_ns: get_opt(m, "posted_ns")?,
            rts_arrived_ns: get_opt(m, "rts_arrived_ns")?,
            cts_launch_ns: get_opt(m, "cts_launch_ns")?,
            cts_arrived_ns: get_opt(m, "cts_arrived_ns")?,
            data_launch_ns: get_opt(m, "data_launch_ns")?,
            drained_ns: get_opt(m, "drained_ns")?,
            delivered_ns: get_opt(m, "delivered_ns")?,
            recv_posted_ns: get_opt(m, "recv_posted_ns")?,
            matched_ns: get_opt(m, "matched_ns")?,
            recv_ready_ns: get_opt(m, "recv_ready_ns")?,
            acked_ns: get_opt(m, "acked_ns")?,
        });
    }
    for f in get_arr(&doc, "flows")? {
        let mut links = Vec::new();
        for l in get_arr(f, "links")? {
            links.push(l.as_num().ok_or("flow link id is not a number")? as u32);
        }
        data.flows.push(FlowRec {
            class: parse_flow_class(get_str(f, "class")?)?,
            msg: get_opt(f, "msg")?,
            rank: get_u32(f, "rank")?,
            token: get_u64(f, "token")?,
            bytes: get_u64(f, "bytes")?,
            links,
            launch_ns: get_u64(f, "launch_ns")?,
            drained_ns: get_opt(f, "drained_ns")?,
            delivered_ns: get_opt(f, "delivered_ns")?,
        });
    }
    for d in get_arr(&doc, "dispatches")? {
        data.dispatches.push(DispatchSpan {
            rank: get_u32(d, "rank")?,
            begin_ns: get_u64(d, "begin_ns")?,
            end_ns: get_u64(d, "end_ns")?,
            trigger: parse_trigger(get_str(d, "trigger")?, get_u64(d, "arg")?)?,
        });
    }
    for p in get_arr(&doc, "protocols")? {
        data.protocols.push(ProtoSpan {
            rank: get_u32(p, "rank")?,
            begin_ns: get_u64(p, "begin_ns")?,
            end_ns: get_u64(p, "end_ns")?,
            kind: parse_proto_kind(get_str(p, "kind")?)?,
            msg: get_u64(p, "msg")?,
        });
    }
    for c in get_arr(&doc, "computes")? {
        data.computes.push(ComputeRec {
            rank: get_u32(c, "rank")?,
            token: get_u64(c, "token")?,
            begin_ns: get_u64(c, "begin_ns")?,
            end_ns: get_u64(c, "end_ns")?,
            gpu: get_bool(c, "gpu")?,
        });
    }
    for p in get_arr(&doc, "phases")? {
        data.phases.push(PhaseRec {
            rank: get_u32(p, "rank")?,
            phase: get_u32(p, "phase")?,
            begin: get_bool(p, "begin")?,
            t_ns: get_u64(p, "t_ns")?,
        });
    }
    for g in get_arr(&doc, "gauges")? {
        data.gauges.push(GaugeRec {
            t_ns: get_u64(g, "t_ns")?,
            metric: parse_gauge_metric(get_str(g, "metric")?)?,
            index: get_u32(g, "index")?,
            value: want(g, "value")?
                .as_num()
                .ok_or("gauge value is not a number")?,
        });
    }
    if doc.get("alerts").is_some() {
        for a in get_arr(&doc, "alerts")? {
            let kind = get_str(a, "kind")?;
            data.alerts.push(crate::monitor::HealthAlert {
                kind: crate::monitor::AlertKind::from_label(kind)
                    .ok_or_else(|| format!("unknown alert kind {kind:?}"))?,
                t_ns: get_u64(a, "t_ns")?,
                subject: get_u32(a, "subject")?,
                value: get_u64(a, "value")?,
                threshold: get_u64(a, "threshold")?,
            });
        }
    }
    for f in get_arr(&doc, "per_rank_finish_ns")? {
        data.per_rank_finish_ns
            .push(f.as_num().ok_or("finish time is not a number")? as u64);
    }
    Ok(data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ObsData {
        let mut d = ObsData {
            nranks: 2,
            link_labels: vec!["NicTx(0)".into(), "Backbone".into()],
            link_caps: vec![12.5e9, 100e9],
            link_lat_ns: vec![500, 120],
            noise_windows: vec![vec![(10, 20)], vec![]],
            stall_windows: vec![vec![], vec![(5, 7), (9, 11)]],
            metrics_interval_ns: 1000,
            per_rank_finish_ns: vec![100, 120],
            ..ObsData::default()
        };
        d.msgs.push(MsgRec {
            src: 0,
            dst: 1,
            tag: 7,
            bytes: 4096,
            eager: true,
            posted_ns: Some(3),
            delivered_ns: Some(55),
            recv_posted_ns: Some(1),
            matched_ns: Some(55),
            recv_ready_ns: Some(55),
            ..MsgRec::default()
        });
        d.flows.push(FlowRec {
            class: FlowClass::Eager,
            msg: Some(0),
            rank: 0,
            token: 0,
            bytes: 4096,
            links: vec![0, 1],
            launch_ns: 3,
            drained_ns: Some(40),
            delivered_ns: Some(55),
        });
        d.dispatches.push(DispatchSpan {
            rank: 0,
            begin_ns: 0,
            end_ns: 10,
            trigger: Trigger::Start,
        });
        d.dispatches.push(DispatchSpan {
            rank: 1,
            begin_ns: 55,
            end_ns: 60,
            trigger: Trigger::RecvDone { msg: 0 },
        });
        d.protocols.push(ProtoSpan {
            rank: 1,
            begin_ns: 20,
            end_ns: 25,
            kind: ProtoKind::Unexpected,
            msg: 0,
        });
        d.computes.push(ComputeRec {
            rank: 1,
            token: 4,
            begin_ns: 60,
            end_ns: 90,
            gpu: false,
        });
        d.phases.push(PhaseRec {
            rank: 0,
            phase: 1,
            begin: true,
            t_ns: 2,
        });
        d.gauges.push(GaugeRec {
            t_ns: 1000,
            metric: GaugeMetric::LinkUtil,
            index: 1,
            value: 0.75,
        });
        d
    }

    #[test]
    fn round_trips() {
        let d = sample();
        let text = to_json(&d);
        let back = from_json(&text).unwrap();
        assert_eq!(back.nranks, d.nranks);
        assert_eq!(back.link_labels, d.link_labels);
        assert_eq!(back.link_caps, d.link_caps);
        assert_eq!(back.link_lat_ns, d.link_lat_ns);
        assert_eq!(back.noise_windows, d.noise_windows);
        assert_eq!(back.stall_windows, d.stall_windows);
        assert_eq!(back.msgs, d.msgs);
        assert_eq!(back.flows, d.flows);
        assert_eq!(back.dispatches, d.dispatches);
        assert_eq!(back.protocols, d.protocols);
        assert_eq!(back.computes, d.computes);
        assert_eq!(back.phases, d.phases);
        assert_eq!(back.gauges, d.gauges);
        assert_eq!(back.per_rank_finish_ns, d.per_rank_finish_ns);
        // And the serialized form itself is stable.
        assert_eq!(to_json(&back), text);
    }

    #[test]
    fn rejects_wrong_format() {
        assert!(from_json("{\"format\":\"something-else\"}").is_err());
        assert!(from_json("not json").is_err());
    }

    #[test]
    fn alerts_round_trip_and_stay_absent_when_unmonitored() {
        // Unmonitored recordings — every committed fixture — never carry
        // the key, so their serialized bytes are unchanged.
        let plain = sample();
        assert!(!to_json(&plain).contains("\"alerts\""));

        let mut d = sample();
        d.alerts.push(crate::monitor::HealthAlert {
            kind: crate::monitor::AlertKind::HotLink,
            t_ns: 4000,
            subject: 1,
            value: 910,
            threshold: 850,
        });
        let text = to_json(&d);
        assert!(text.contains("\"kind\":\"hot_link\""));
        let back = from_json(&text).unwrap();
        assert_eq!(back.alerts, d.alerts);
        assert_eq!(to_json(&back), text);
    }
}
