//! Self-contained validation of the exported artifacts, used by the
//! test suite and the `obs-validate` binary (and CI).
//!
//! Ships its own minimal recursive-descent JSON parser so the check is
//! a real parse, not a regex, while keeping the crate dependency-free.
//! [`validate_chrome`] then checks trace semantics: the document shape,
//! that every complete (`"X"`) span on a track nests or tiles without
//! partial overlap, and that async `"b"`/`"e"` events pair up.

use std::collections::HashMap;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, what: &str) -> Result<T, String> {
        Err(format!("json parse error at byte {}: {}", self.pos, what))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected '{}'", b as char))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => self.err("expected a value"),
        }
    }

    fn literal(&mut self, lit: &str, val: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(val)
        } else {
            self.err(&format!("expected '{lit}'"))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        text.parse::<f64>()
            .map(Json::Num)
            .or_else(|_| self.err("bad number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            match hex.and_then(char::from_u32) {
                                Some(c) => {
                                    out.push(c);
                                    self.pos += 4;
                                }
                                None => return self.err("bad \\u escape"),
                            }
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(b) => {
                    // Consume one multi-byte UTF-8 scalar (at most 4 bytes —
                    // never re-validate the whole remaining input).
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return self.err("invalid utf-8 in string"),
                    };
                    let chunk = self
                        .bytes
                        .get(self.pos..self.pos + len)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| {
                            format!("json parse error at byte {}: invalid utf-8", self.pos)
                        })?;
                    out.push_str(chunk);
                    self.pos += len;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }
}

/// Parse a JSON document. The whole input must be one value (trailing
/// whitespace allowed).
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing garbage after document");
    }
    Ok(v)
}

/// What [`validate_chrome`] found in a well-formed trace.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChromeSummary {
    /// Total events in `traceEvents`.
    pub events: usize,
    /// Complete (`"X"`) spans.
    pub complete_spans: usize,
    /// Paired async (`"b"`/`"e"`) spans.
    pub async_spans: usize,
    /// Counter (`"C"`) samples.
    pub counters: usize,
    /// Tracks (distinct `(pid, tid)` pairs carrying `"X"` spans).
    pub tracks: usize,
}

/// Nanoseconds from a trace timestamp in microseconds (exact: the
/// exporter always emits three decimals).
fn ev_ns(v: &Json, key: &str) -> Result<u64, String> {
    let n = v
        .get(key)
        .and_then(Json::as_num)
        .ok_or_else(|| format!("event missing numeric '{key}'"))?;
    if n < 0.0 {
        return Err(format!("negative '{key}'"));
    }
    Ok((n * 1000.0).round() as u64)
}

/// Parse and semantically validate a Chrome trace-event document.
///
/// Checks, beyond the parse itself:
/// * top level is an object with a `traceEvents` array of objects, each
///   carrying string `ph` and `name` and a numeric `pid`;
/// * `"X"` spans have `ts`/`dur`, and on every `(pid, tid)` track any
///   two spans either nest or are disjoint — partial overlap on a
///   serial track means broken instrumentation;
/// * every async `"b"` has a matching `"e"` (same `cat` + `id`) at an
///   equal-or-later timestamp, with no `"e"` left unmatched.
pub fn validate_chrome(text: &str) -> Result<ChromeSummary, String> {
    let doc = parse_json(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("top level must be an object with a traceEvents array")?;

    let mut summary = ChromeSummary {
        events: events.len(),
        ..ChromeSummary::default()
    };
    // (pid, tid) -> [(begin_ns, end_ns)]
    let mut tracks: HashMap<(u64, u64), Vec<(u64, u64)>> = HashMap::new();
    // (cat, id) -> stack of open 'b' timestamps
    let mut open_async: HashMap<(String, String), Vec<u64>> = HashMap::new();

    for (i, ev) in events.iter().enumerate() {
        let at = |what: &str| format!("traceEvents[{i}]: {what}");
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| at("missing string 'ph'"))?;
        ev.get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| at("missing string 'name'"))?;
        let pid = ev
            .get("pid")
            .and_then(Json::as_num)
            .ok_or_else(|| at("missing numeric 'pid'"))? as u64;
        match ph {
            "X" => {
                let tid = ev
                    .get("tid")
                    .and_then(Json::as_num)
                    .ok_or_else(|| at("X event missing 'tid'"))? as u64;
                let ts = ev_ns(ev, "ts").map_err(|e| at(&e))?;
                let dur = ev_ns(ev, "dur").map_err(|e| at(&e))?;
                tracks.entry((pid, tid)).or_default().push((ts, ts + dur));
                summary.complete_spans += 1;
            }
            "b" | "e" | "n" => {
                let cat = ev
                    .get("cat")
                    .and_then(Json::as_str)
                    .ok_or_else(|| at("async event missing 'cat'"))?
                    .to_string();
                let id = ev
                    .get("id")
                    .and_then(Json::as_str)
                    .ok_or_else(|| at("async event missing 'id'"))?
                    .to_string();
                let ts = ev_ns(ev, "ts").map_err(|e| at(&e))?;
                match ph {
                    "b" => open_async.entry((cat, id)).or_default().push(ts),
                    "e" => {
                        let begin = open_async
                            .get_mut(&(cat.clone(), id.clone()))
                            .and_then(Vec::pop)
                            .ok_or_else(|| {
                                at(&format!("'e' for {cat}/{id} without an open 'b'"))
                            })?;
                        if ts < begin {
                            return Err(at(&format!(
                                "async span {cat}/{id} ends before it begins"
                            )));
                        }
                        summary.async_spans += 1;
                    }
                    // Instant inside an async span: must land inside one.
                    _ => {
                        if open_async
                            .get(&(cat.clone(), id.clone()))
                            .is_none_or(|stack| stack.is_empty())
                        {
                            return Err(at(&format!("'n' for {cat}/{id} outside an open span")));
                        }
                    }
                }
            }
            "C" => {
                ev_ns(ev, "ts").map_err(|e| at(&e))?;
                summary.counters += 1;
            }
            "M" => {}
            other => return Err(at(&format!("unsupported event phase '{other}'"))),
        }
    }

    for ((cat, id), stack) in &open_async {
        if !stack.is_empty() {
            return Err(format!(
                "async span {cat}/{id} has {} unclosed 'b'",
                stack.len()
            ));
        }
    }

    // Nesting discipline per serial track: sort by (start asc, end desc)
    // so a parent precedes the spans it contains, then sweep a
    // containment stack. A span overlapping the stack top without being
    // contained by it is a partial overlap.
    summary.tracks = tracks.len();
    for ((pid, tid), mut spans) in tracks {
        spans.sort_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));
        let mut stack: Vec<(u64, u64)> = Vec::new();
        for (b, e) in spans {
            while let Some(&(_, pe)) = stack.last() {
                if pe <= b {
                    stack.pop();
                } else {
                    break;
                }
            }
            if let Some(&(_, pe)) = stack.last() {
                if e > pe {
                    return Err(format!(
                        "track pid={pid} tid={tid}: span [{b},{e}) partially overlaps [.., {pe})"
                    ));
                }
            }
            stack.push((b, e));
        }
    }

    Ok(summary)
}

/// Validate the metrics CSV: header row plus `time_ns,metric,index,value`
/// records with numeric fields and non-decreasing timestamps. Returns the
/// number of data rows.
pub fn validate_metrics_csv(text: &str) -> Result<usize, String> {
    let mut lines = text.lines();
    let header = lines.next().ok_or("empty metrics file")?;
    if header != crate::metrics::CSV_HEADER {
        return Err(format!("bad header: {header:?}"));
    }
    let mut rows = 0usize;
    let mut last_t = 0u64;
    for (i, line) in lines.enumerate() {
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 4 {
            return Err(format!(
                "row {}: expected 4 fields, got {}",
                i + 1,
                fields.len()
            ));
        }
        let t: u64 = fields[0]
            .parse()
            .map_err(|_| format!("row {}: bad time_ns {:?}", i + 1, fields[0]))?;
        if t < last_t {
            return Err(format!("row {}: time goes backwards", i + 1));
        }
        last_t = t;
        if fields[1].is_empty() {
            return Err(format!("row {}: empty metric name", i + 1));
        }
        fields[2]
            .parse::<u32>()
            .map_err(|_| format!("row {}: bad index {:?}", i + 1, fields[2]))?;
        fields[3]
            .parse::<f64>()
            .map_err(|_| format!("row {}: bad value {:?}", i + 1, fields[3]))?;
        rows += 1;
    }
    Ok(rows)
}

/// Validate a rendered critical-path report (see
/// [`CriticalPath::render`](crate::critical::CriticalPath::render)): the
/// layer-attribution percentages must sum to 100 within the per-line
/// rounding tolerance (each line prints one decimal place). Returns the
/// sum on success.
pub fn validate_critical_report(text: &str) -> Result<f64, String> {
    let mut in_attr = false;
    let mut sum = 0.0;
    let mut lines = 0usize;
    for line in text.lines() {
        if line.starts_with("layer attribution:") {
            in_attr = true;
            continue;
        }
        if !in_attr {
            continue;
        }
        // Attribution lines end with a percentage; the first line that
        // doesn't (the next section header) ends the block.
        let Some(pct) = line.trim_end().strip_suffix('%') else {
            break;
        };
        let tok = pct.rsplit(' ').next().unwrap_or("");
        sum += tok
            .parse::<f64>()
            .map_err(|_| format!("bad attribution line {line:?}"))?;
        lines += 1;
    }
    if lines == 0 {
        return Err("no layer-attribution lines found".into());
    }
    let tolerance = 0.05 * lines as f64 + 1e-9;
    if (sum - 100.0).abs() > tolerance {
        return Err(format!(
            "layer percentages sum to {sum:.2}%, not 100% (±{tolerance:.2})"
        ));
    }
    Ok(sum)
}

/// What [`validate_summary`] found in a well-formed streaming summary.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SummaryCheck {
    /// `totals.msgs`.
    pub msgs: u64,
    /// `totals.flow_starts`.
    pub flows: u64,
    /// Flow classes carrying at least one sample.
    pub classes: usize,
    /// Links with heatmap traffic.
    pub hot_links: usize,
    /// Ranks (length of every per-rank array).
    pub ranks: usize,
}

/// Non-negative integer field of a summary object.
fn sum_u64(v: &Json, key: &str) -> Result<u64, String> {
    let n = v
        .get(key)
        .and_then(Json::as_num)
        .ok_or_else(|| format!("missing numeric '{key}'"))?;
    if n < 0.0 || n != n.trunc() {
        return Err(format!("'{key}' must be a non-negative integer, got {n}"));
    }
    Ok(n as u64)
}

/// Check one serialized histogram: the exact counters must agree with
/// the sparse buckets (counts sum up; bounds ascending; min/max present
/// exactly when non-empty). Returns the sample count.
fn check_hist(v: &Json, what: &str) -> Result<u64, String> {
    let at = |e: String| format!("{what}: {e}");
    let count = sum_u64(v, "count").map_err(at)?;
    sum_u64(v, "sum").map_err(at)?;
    let buckets = v
        .get("buckets")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{what}: missing 'buckets' array"))?;
    let mut total = 0u64;
    let mut prev_low: Option<u64> = None;
    for (i, b) in buckets.iter().enumerate() {
        let pair = b
            .as_arr()
            .filter(|p| p.len() == 2)
            .ok_or_else(|| format!("{what}: buckets[{i}] must be a [lower_bound, count] pair"))?;
        let low = pair[0].as_num().unwrap_or(-1.0);
        let c = pair[1].as_num().unwrap_or(0.0);
        if low < 0.0 || c <= 0.0 {
            return Err(format!("{what}: buckets[{i}] has bad values"));
        }
        if prev_low.is_some_and(|p| p >= low as u64) {
            return Err(format!("{what}: bucket bounds not ascending at [{i}]"));
        }
        prev_low = Some(low as u64);
        total += c as u64;
    }
    if total != count {
        return Err(format!(
            "{what}: bucket counts sum to {total}, 'count' says {count}"
        ));
    }
    match (count, v.get("min"), v.get("max")) {
        (0, None, None) => {}
        (0, _, _) => return Err(format!("{what}: empty histogram carries min/max")),
        (_, Some(min), Some(max)) => {
            let (min, max) = (min.as_num().unwrap_or(-1.0), max.as_num().unwrap_or(-1.0));
            if min < 0.0 || max < min {
                return Err(format!("{what}: bad min/max"));
            }
        }
        _ => return Err(format!("{what}: non-empty histogram missing min/max")),
    }
    Ok(count)
}

/// Parse and semantically validate a streaming summary JSON document
/// (format `adapt-obs-summary-v1`, produced by
/// [`summary_json`](crate::stream::summary_json)).
///
/// Checks, beyond the parse itself: the format tag; that every
/// histogram's sparse buckets agree with its exact `count`; that the
/// four stage histograms are present; that heatmap cells are in-range
/// `[column, bytes]` pairs; and that all five per-rank arrays have
/// exactly `nranks` entries.
pub fn validate_summary(text: &str) -> Result<SummaryCheck, String> {
    let doc = parse_json(text)?;
    let format = doc
        .get("format")
        .and_then(Json::as_str)
        .ok_or("missing 'format'")?;
    if format != crate::stream::SUMMARY_FORMAT {
        return Err(format!("unsupported summary format {format:?}"));
    }
    let nranks = sum_u64(&doc, "nranks")?;
    sum_u64(&doc, "makespan_ns")?;
    let totals = doc.get("totals").ok_or("missing 'totals'")?;
    for key in [
        "msgs",
        "eager_msgs",
        "unexpected_matches",
        "drops",
        "retransmits",
        "bytes_posted",
        "flow_starts",
        "dispatches",
        "protocols",
        "peak_open_msgs",
        "peak_slots",
    ] {
        sum_u64(totals, key).map_err(|e| format!("totals: {e}"))?;
    }
    let mut chk = SummaryCheck {
        msgs: sum_u64(totals, "msgs")?,
        flows: sum_u64(totals, "flow_starts")?,
        ranks: nranks as usize,
        ..SummaryCheck::default()
    };

    let classes = doc
        .get("flow_dur")
        .and_then(Json::as_arr)
        .ok_or("missing 'flow_dur' array")?;
    let known: Vec<&str> = crate::record::FlowClass::ALL
        .iter()
        .map(|c| c.label())
        .collect();
    for (i, entry) in classes.iter().enumerate() {
        let class = entry
            .get("class")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("flow_dur[{i}]: missing 'class'"))?;
        if !known.contains(&class) {
            return Err(format!("flow_dur[{i}]: unknown class {class:?}"));
        }
        let h = entry
            .get("hist")
            .ok_or_else(|| format!("flow_dur[{i}]: missing 'hist'"))?;
        if check_hist(h, &format!("flow_dur[{i}] ({class})"))? == 0 {
            return Err(format!(
                "flow_dur[{i}] ({class}): empty classes must be omitted"
            ));
        }
        chk.classes += 1;
    }

    let stages = doc.get("stages").ok_or("missing 'stages'")?;
    for name in [
        "posted_to_matched",
        "matched_to_delivered",
        "rts_to_cts",
        "retransmits_per_msg",
    ] {
        let h = stages
            .get(name)
            .ok_or_else(|| format!("stages: missing '{name}'"))?;
        let count = check_hist(h, &format!("stages.{name}"))?;
        // Every stage sample came from a posted message; a stage count
        // above totals.msgs means the totals or a histogram is corrupt.
        // (The reverse is legal — a stalled run posts messages that
        // never reach later stages.)
        if count > chk.msgs {
            return Err(format!(
                "stages.{name}: count {count} exceeds totals.msgs {}",
                chk.msgs
            ));
        }
    }

    let heat = doc.get("heat").ok_or("missing 'heat'")?;
    sum_u64(heat, "bucket_ns")?;
    let cols = sum_u64(heat, "cols")?;
    let links = heat
        .get("links")
        .and_then(Json::as_arr)
        .ok_or("heat: missing 'links' array")?;
    for (i, l) in links.iter().enumerate() {
        sum_u64(l, "link").map_err(|e| format!("heat.links[{i}]: {e}"))?;
        l.get("label")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("heat.links[{i}]: missing 'label'"))?;
        let cells = l
            .get("cells")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("heat.links[{i}]: missing 'cells'"))?;
        if cells.is_empty() {
            return Err(format!(
                "heat.links[{i}]: traffic-free links must be omitted"
            ));
        }
        for (j, c) in cells.iter().enumerate() {
            let pair = c.as_arr().filter(|p| p.len() == 2).ok_or_else(|| {
                format!("heat.links[{i}].cells[{j}] must be a [column, bytes] pair")
            })?;
            let col = pair[0].as_num().unwrap_or(-1.0);
            if col < 0.0 || col >= cols as f64 {
                return Err(format!("heat.links[{i}].cells[{j}]: column out of range"));
            }
        }
        chk.hot_links += 1;
    }

    let ranks = doc.get("ranks").ok_or("missing 'ranks'")?;
    for name in ["finish_ns", "busy_ns", "compute_ns", "noise_ns", "stall_ns"] {
        let arr = ranks
            .get(name)
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("ranks: missing '{name}' array"))?;
        if arr.len() != nranks as usize {
            return Err(format!(
                "ranks.{name}: {} entries for {nranks} ranks",
                arr.len()
            ));
        }
        if arr.iter().any(|v| v.as_num().is_none_or(|n| n < 0.0)) {
            return Err(format!("ranks.{name}: non-numeric or negative entry"));
        }
    }
    Ok(chk)
}

/// What [`validate_health`] found in a well-formed health artifact.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HealthCheck {
    /// Snapshots taken.
    pub snapshots: u64,
    /// Total alerts across all kinds (`counts`, kept + dropped).
    pub alerts: u64,
    /// Alert records present in the `alerts` array.
    pub kept_alerts: usize,
    /// Ranks in the monitored job.
    pub ranks: u64,
}

/// Parse and semantically validate a health artifact (format
/// `adapt-obs-health-v1`, produced by
/// [`health_json`](crate::monitor::health_json)).
///
/// Checks, beyond the parse itself: the format tag; a positive snapshot
/// interval; that `counts` covers exactly the known alert kinds; that
/// every alert record carries a known kind, a timestamp within the
/// snapshotted range, and its subject label; that alert timestamps are
/// non-decreasing (the stream is an in-run timeline); and that the
/// per-kind counts equal the kept records plus `dropped_alerts`.
pub fn validate_health(text: &str) -> Result<HealthCheck, String> {
    let doc = parse_json(text)?;
    let format = doc
        .get("format")
        .and_then(Json::as_str)
        .ok_or("missing 'format'")?;
    if format != crate::monitor::HEALTH_FORMAT {
        return Err(format!("unsupported health format {format:?}"));
    }
    let interval = sum_u64(&doc, "interval_ns")?;
    if interval == 0 {
        return Err("'interval_ns' must be positive".into());
    }
    let nranks = sum_u64(&doc, "nranks")?;
    sum_u64(&doc, "nlinks")?;
    let snapshots = sum_u64(&doc, "snapshots")?;
    let last_t = sum_u64(&doc, "last_t_ns")?;

    let counts = doc.get("counts").ok_or("missing 'counts'")?;
    let known: Vec<&str> = crate::monitor::AlertKind::ALL
        .iter()
        .map(|k| k.label())
        .collect();
    let Json::Obj(pairs) = counts else {
        return Err("'counts' must be an object".into());
    };
    if pairs.len() != known.len() || pairs.iter().any(|(k, _)| !known.contains(&k.as_str())) {
        return Err(format!(
            "'counts' must carry exactly the known alert kinds {known:?}"
        ));
    }
    let mut total = 0u64;
    for kind in &known {
        total += sum_u64(counts, kind).map_err(|e| format!("counts: {e}"))?;
    }

    let alerts = doc
        .get("alerts")
        .and_then(Json::as_arr)
        .ok_or("missing 'alerts' array")?;
    let mut prev_t = 0u64;
    for (i, a) in alerts.iter().enumerate() {
        let kind = a
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("alerts[{i}]: missing 'kind'"))?;
        if !known.contains(&kind) {
            return Err(format!("alerts[{i}]: unknown kind {kind:?}"));
        }
        let t = sum_u64(a, "t_ns").map_err(|e| format!("alerts[{i}]: {e}"))?;
        if t < prev_t {
            return Err(format!("alerts[{i}]: timestamps must be non-decreasing"));
        }
        if t > last_t {
            return Err(format!(
                "alerts[{i}]: t_ns {t} beyond last snapshot {last_t}"
            ));
        }
        prev_t = t;
        let subject = sum_u64(a, "subject").map_err(|e| format!("alerts[{i}]: {e}"))?;
        if kind == "straggler" && subject >= nranks {
            return Err(format!(
                "alerts[{i}]: straggler rank {subject} out of range"
            ));
        }
        if a.get("label").and_then(Json::as_str).is_none() {
            return Err(format!("alerts[{i}]: missing 'label'"));
        }
        sum_u64(a, "value").map_err(|e| format!("alerts[{i}]: {e}"))?;
        sum_u64(a, "threshold").map_err(|e| format!("alerts[{i}]: {e}"))?;
    }

    let dropped = sum_u64(&doc, "dropped_alerts")?;
    if alerts.len() as u64 + dropped != total {
        return Err(format!(
            "counts sum to {total}, but {} kept + {dropped} dropped alerts",
            alerts.len()
        ));
    }
    if snapshots == 0 && total > 0 {
        return Err("alerts recorded with zero snapshots".into());
    }
    Ok(HealthCheck {
        snapshots,
        alerts: total,
        kept_alerts: alerts.len(),
        ranks: nranks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let doc = parse_json(r#"{"a":[1,2.5,-3e2],"b":"x\ny","c":null,"d":true}"#).unwrap();
        assert_eq!(
            doc.get("a").unwrap().as_arr().unwrap()[2].as_num(),
            Some(-300.0)
        );
        assert_eq!(doc.get("b").unwrap().as_str(), Some("x\ny"));
        assert_eq!(doc.get("c"), Some(&Json::Null));
        assert_eq!(doc.get("d"), Some(&Json::Bool(true)));
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_syntax() {
        assert!(parse_json("{} x").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("{\"a\"}").is_err());
    }

    #[test]
    fn accepts_nested_and_tiled_spans() {
        let doc = r#"{"traceEvents":[
            {"name":"a","ph":"X","pid":1,"tid":0,"ts":0.000,"dur":10.000},
            {"name":"b","ph":"X","pid":1,"tid":0,"ts":2.000,"dur":3.000},
            {"name":"c","ph":"X","pid":1,"tid":0,"ts":5.000,"dur":5.000},
            {"name":"d","ph":"X","pid":1,"tid":0,"ts":10.000,"dur":1.000}
        ]}"#;
        let s = validate_chrome(doc).unwrap();
        assert_eq!(s.complete_spans, 4);
        assert_eq!(s.tracks, 1);
    }

    #[test]
    fn rejects_partial_overlap() {
        let doc = r#"{"traceEvents":[
            {"name":"a","ph":"X","pid":1,"tid":0,"ts":0.000,"dur":10.000},
            {"name":"b","ph":"X","pid":1,"tid":0,"ts":5.000,"dur":10.000}
        ]}"#;
        assert!(validate_chrome(doc)
            .unwrap_err()
            .contains("partially overlaps"));
    }

    #[test]
    fn rejects_unpaired_async() {
        let doc = r#"{"traceEvents":[
            {"name":"m","cat":"msg","ph":"b","pid":1,"tid":0,"id":"m0","ts":0.000}
        ]}"#;
        assert!(validate_chrome(doc).unwrap_err().contains("unclosed"));
        let doc = r#"{"traceEvents":[
            {"name":"m","cat":"msg","ph":"e","pid":1,"tid":0,"id":"m0","ts":0.000}
        ]}"#;
        assert!(validate_chrome(doc)
            .unwrap_err()
            .contains("without an open"));
    }

    #[test]
    fn metrics_csv_checks_shape() {
        assert_eq!(
            validate_metrics_csv("time_ns,metric,index,value\n0,posted_depth,0,3\n").unwrap(),
            1
        );
        assert!(validate_metrics_csv("nope\n").is_err());
        assert!(validate_metrics_csv("time_ns,metric,index,value\n5,x,0,1\n2,x,0,1\n").is_err());
        assert!(validate_metrics_csv("time_ns,metric,index,value\n0,x,0\n").is_err());
    }

    #[test]
    fn critical_report_percentages_must_sum_to_100() {
        let good = "critical path: rank 1 finished last at 0.300 us; 4 segments\n\
                    layer attribution:\n\
                    \x20 callback        0.180 us   60.0%\n\
                    \x20 network         0.120 us   40.0%\n\
                    chain (chronological):\n";
        assert!((validate_critical_report(good).unwrap() - 100.0).abs() < 0.2);
        let bad = good.replace("60.0%", "45.0%");
        assert!(validate_critical_report(&bad)
            .unwrap_err()
            .contains("not 100%"));
        assert!(validate_critical_report("no report here\n").is_err());
    }

    #[test]
    fn summary_check_catches_tampering() {
        use crate::recorder::Recorder as _;
        let mut r = crate::stream::StreamRecorder::new();
        r.meta(2, vec!["L0".into()]);
        r.msg_posted(0, 0, 1, 0, 64, true, 10);
        r.msg_event(
            0,
            crate::recorder::MsgEvent::Matched {
                posted_ns: Some(5),
                unexpected: false,
            },
            40,
        );
        r.finish(&[100, 100]);
        let good = crate::stream::summary_json(&r.finish_summary().unwrap());
        validate_summary(&good).unwrap();
        // A histogram count that no longer matches its buckets.
        let bad = good.replacen("\"count\":1,", "\"count\":2,", 1);
        assert!(validate_summary(&bad).unwrap_err().contains("sum to"));
        // Per-rank arrays must match nranks.
        let bad = good.replace("\"nranks\": 2", "\"nranks\": 3");
        assert!(validate_summary(&bad).unwrap_err().contains("ranks"));
        // Deflated totals: a stage histogram counting more samples than
        // messages posted is corruption (the reverse is a stalled run).
        let bad = good.replacen("\"msgs\":1,", "\"msgs\":0,", 1);
        assert!(validate_summary(&bad)
            .unwrap_err()
            .contains("exceeds totals.msgs"));
        assert!(validate_summary("{\"format\": \"nope\"}").is_err());
        assert!(validate_summary("not json").is_err());
    }

    /// A minimal well-formed health artifact the tampering tests mutate.
    fn good_health() -> String {
        "{\"format\": \"adapt-obs-health-v1\",\n\"interval_ns\": 1000,\n\"nranks\": 4,\n\
         \"nlinks\": 2,\n\"snapshots\": 9,\n\"last_t_ns\": 9000,\n\
         \"counts\": {\"straggler\": 1, \"hot_link\": 1, \"retransmit_storm\": 0, \
         \"progress_flatline\": 0},\n\"alerts\": [\n\
         {\"kind\": \"straggler\", \"t_ns\": 5000, \"subject\": 3, \"label\": \"rank 3\", \
         \"value\": 5000, \"threshold\": 2400},\n\
         {\"kind\": \"hot_link\", \"t_ns\": 8000, \"subject\": 1, \"label\": \"L1 node1/nic-tx\", \
         \"value\": 900, \"threshold\": 850}],\n\"dropped_alerts\": 0\n}\n"
            .to_string()
    }

    #[test]
    fn health_check_accepts_a_well_formed_artifact() {
        let chk = validate_health(&good_health()).unwrap();
        assert_eq!(chk.snapshots, 9);
        assert_eq!(chk.alerts, 2);
        assert_eq!(chk.kept_alerts, 2);
        assert_eq!(chk.ranks, 4);
    }

    #[test]
    fn health_check_rejects_tampered_artifacts() {
        let good = good_health();
        // Wrong or missing format tag.
        assert!(validate_health(&good.replacen("health-v1", "health-v2", 1))
            .unwrap_err()
            .contains("unsupported health format"));
        // Counts that disagree with the alert records.
        let bad = good.replacen("\"straggler\": 1", "\"straggler\": 2", 1);
        assert!(validate_health(&bad).unwrap_err().contains("counts sum"));
        // An unknown alert kind.
        let bad = good.replacen("\"kind\": \"hot_link\"", "\"kind\": \"gremlin\"", 1);
        assert!(validate_health(&bad).unwrap_err().contains("unknown kind"));
        // A counts object missing a known kind.
        let bad = good.replacen("\"retransmit_storm\": 0, ", "", 1);
        assert!(validate_health(&bad)
            .unwrap_err()
            .contains("exactly the known alert kinds"));
        // Timestamps running backwards.
        let bad = good.replacen("\"t_ns\": 8000", "\"t_ns\": 4000", 1);
        assert!(validate_health(&bad)
            .unwrap_err()
            .contains("non-decreasing"));
        // An alert claiming to come after the last snapshot.
        let bad = good.replacen("\"t_ns\": 8000", "\"t_ns\": 9500", 1);
        assert!(validate_health(&bad)
            .unwrap_err()
            .contains("beyond last snapshot"));
        // A straggler rank outside the job.
        let bad = good.replacen("\"subject\": 3", "\"subject\": 7", 1);
        assert!(validate_health(&bad).unwrap_err().contains("out of range"));
        // A zero snapshot interval.
        let bad = good.replacen("\"interval_ns\": 1000", "\"interval_ns\": 0", 1);
        assert!(validate_health(&bad).unwrap_err().contains("positive"));
        // Alerts without any snapshots.
        let bad = good
            .replacen("\"snapshots\": 9", "\"snapshots\": 0", 1)
            .replacen("\"last_t_ns\": 9000", "\"last_t_ns\": 0", 1)
            .replacen("\"t_ns\": 5000", "\"t_ns\": 0", 1)
            .replacen("\"t_ns\": 8000", "\"t_ns\": 0", 1);
        assert!(validate_health(&bad)
            .unwrap_err()
            .contains("zero snapshots"));
        // Truncation and non-JSON input parse-fail, never panic.
        assert!(validate_health(&good[..good.len() / 2]).is_err());
        assert!(validate_health("not json").is_err());
        assert!(validate_health("{}").is_err());
    }

    #[test]
    fn critical_report_check_accepts_a_real_render() {
        let data = crate::record::ObsData {
            nranks: 1,
            per_rank_finish_ns: vec![100],
            dispatches: vec![crate::record::DispatchSpan {
                rank: 0,
                begin_ns: 0,
                end_ns: 100,
                trigger: crate::record::Trigger::Start,
            }],
            ..Default::default()
        };
        let text = crate::critical::critical_path(&data).render();
        validate_critical_report(&text).unwrap();
    }
}
