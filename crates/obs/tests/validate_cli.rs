//! Error-path coverage for the `obs-validate` binary: exit codes and
//! diagnostics for missing, malformed, and truncated artifacts. The
//! happy paths are exercised end-to-end by CI's obs-smoke job; these
//! tests pin the failure contract CI relies on (nonzero exit + an
//! `INVALID` line naming the file).

use std::process::Command;

fn run(args: &[&str]) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_obs-validate"))
        .args(args)
        .output()
        .expect("spawn obs-validate");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn write_tmp(name: &str, content: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("obs-validate-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, content).unwrap();
    path
}

#[test]
fn no_arguments_is_a_usage_error() {
    let (code, _, err) = run(&[]);
    assert_eq!(code, 2, "usage errors exit 2");
    assert!(err.contains("usage:"), "{err}");
}

#[test]
fn unreadable_file_fails_with_the_path_in_the_message() {
    let (code, _, err) = run(&["/nonexistent/no-such-artifact.json"]);
    assert_eq!(code, 1);
    assert!(err.contains("cannot read /nonexistent/no-such-artifact.json"));
}

#[test]
fn malformed_artifacts_fail_with_an_invalid_line() {
    // Sniffed as a Chrome trace, fails the parse.
    let p = write_tmp("garbage.json", "{\"traceEvents\": [ {\"name\": ");
    let (code, _, err) = run(&[p.to_str().unwrap()]);
    assert_eq!(code, 1);
    assert!(
        err.contains("INVALID") && err.contains("garbage.json"),
        "{err}"
    );

    // Sniffed as a summary by its format tag, fails validation.
    let p = write_tmp(
        "bad-summary.json",
        "{\"format\": \"adapt-obs-summary-v1\", \"nranks\": 2}",
    );
    let (code, _, err) = run(&[p.to_str().unwrap()]);
    assert_eq!(code, 1);
    assert!(err.contains("INVALID"), "{err}");

    // Sniffed as a health artifact, fails validation.
    let p = write_tmp(
        "bad-health.json",
        "{\"format\": \"adapt-obs-health-v1\", \"interval_ns\": 0}",
    );
    let (code, _, err) = run(&[p.to_str().unwrap()]);
    assert_eq!(code, 1);
    assert!(err.contains("INVALID") && err.contains("positive"), "{err}");
}

#[test]
fn truncated_health_artifact_fails_cleanly() {
    let good = concat!(
        "{\"format\": \"adapt-obs-health-v1\",\n\"interval_ns\": 1000,\n\"nranks\": 2,\n",
        "\"nlinks\": 1,\n\"snapshots\": 3,\n\"last_t_ns\": 3000,\n",
        "\"counts\": {\"straggler\": 0, \"hot_link\": 0, \"retransmit_storm\": 0, ",
        "\"progress_flatline\": 0},\n\"alerts\": [],\n\"dropped_alerts\": 0\n}\n"
    );
    let p = write_tmp("good-health.json", good);
    let (code, out, _) = run(&[p.to_str().unwrap()]);
    assert_eq!(code, 0, "the untampered artifact validates");
    assert!(out.contains("OK") && out.contains("3 snapshots"), "{out}");

    // Cut mid-document: a parse error, not a panic, and exit 1.
    let p = write_tmp("truncated-health.json", &good[..good.len() / 2]);
    let (code, _, err) = run(&[p.to_str().unwrap()]);
    assert_eq!(code, 1);
    assert!(err.contains("INVALID"), "{err}");
}

#[test]
fn first_invalid_artifact_stops_the_line() {
    let good = write_tmp("ok-trace.json", "{\"traceEvents\": []}");
    let bad = write_tmp("bad-trace.json", "{\"traceEvents\": [17]}");
    let also_good = write_tmp("ok-trace-2.json", "{\"traceEvents\": []}");
    let (code, out, err) = run(&[
        good.to_str().unwrap(),
        bad.to_str().unwrap(),
        also_good.to_str().unwrap(),
    ]);
    assert_eq!(code, 1);
    assert!(out.contains("ok-trace.json: OK"), "{out}");
    assert!(err.contains("bad-trace.json: INVALID"), "{err}");
    assert!(
        !out.contains("ok-trace-2.json"),
        "stops at the first failure"
    );
}
