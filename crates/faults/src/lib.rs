//! Deterministic fault injection: schedules, plans, and reliability knobs.
//!
//! This crate is the shared vocabulary between the noise model, the network
//! fault injector, and the MPI reliability layer:
//!
//! - [`Schedule`] — an ordered list of `[start, end)` time windows with the
//!   defer/finish-work arithmetic that both OS-noise preemption and
//!   injected rank stalls need. `adapt-noise` builds its lazily generated
//!   window stream on top of it; fault plans use it for link outages and
//!   stall windows.
//! - [`FaultPlan`] — one run's complete fault schedule: per-hop loss
//!   probability, link down windows, bandwidth/latency degradation
//!   windows, and per-rank stalls, plus the [`RelConfig`] retransmission
//!   knobs. Parsed from the CLI `--faults` mini-grammar by
//!   [`FaultPlan::parse`].
//!
//! Everything here is plain data: the crate holds no RNG state. The world
//! derives its fault stream from `MasterSeed(plan.seed)` with
//! `StreamTag::Faults`, so two runs with the same plan and seed are
//! bit-identical.

pub mod plan;
pub mod schedule;

pub use plan::{parse_duration, Degrade, FaultPlan, RelConfig};
pub use schedule::Schedule;
