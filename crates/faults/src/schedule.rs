//! Ordered time-window schedules and the defer/finish-work arithmetic.

use adapt_sim::time::{Duration, Time};

/// An ordered list of half-open `[start, end)` windows during which some
/// resource (a CPU, a link) is unavailable.
///
/// Two construction paths with different guarantees:
///
/// - [`Schedule::new`] normalizes arbitrary input — sorts by start, drops
///   empty windows, and merges overlapping or touching ones. Use this for
///   fault plans written by hand or parsed from the CLI.
/// - [`Schedule::push_back`] appends verbatim and requires monotonically
///   non-decreasing starts. Use this for lazily generated streams (the
///   noise model) where the exact window list must be preserved
///   bit-for-bit.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Schedule {
    windows: Vec<(Time, Time)>,
}

impl Schedule {
    /// The empty schedule: nothing is ever blocked.
    pub fn empty() -> Schedule {
        Schedule::default()
    }

    /// Normalize arbitrary windows: sort by start, drop empty (`end <=
    /// start`) windows, merge overlapping or adjacent ones.
    pub fn new(mut windows: Vec<(Time, Time)>) -> Schedule {
        windows.retain(|&(s, e)| e > s);
        windows.sort_by_key(|&(s, e)| (s, e));
        let mut merged: Vec<(Time, Time)> = Vec::with_capacity(windows.len());
        for (s, e) in windows {
            match merged.last_mut() {
                Some(last) if s <= last.1 => last.1 = last.1.max(e),
                _ => merged.push((s, e)),
            }
        }
        Schedule { windows: merged }
    }

    /// Append a window without normalization. Starts must be
    /// non-decreasing; the window is kept verbatim (even zero-duration) so
    /// generated streams iterate exactly as they were produced.
    pub fn push_back(&mut self, start: Time, end: Time) {
        debug_assert!(
            self.windows
                .last()
                .map(|&(s, _)| s <= start)
                .unwrap_or(true),
            "push_back requires non-decreasing starts"
        );
        self.windows.push((start, end));
    }

    /// The raw window list, in order.
    pub fn windows(&self) -> &[(Time, Time)] {
        &self.windows
    }

    /// True when no windows exist.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// The last generated window, if any (lazy generators peek at this).
    pub fn last(&self) -> Option<(Time, Time)> {
        self.windows.last().copied()
    }

    /// True when `t` falls inside a window.
    pub fn active_at(&self, t: Time) -> bool {
        self.windows.iter().any(|&(s, e)| s <= t && t < e)
    }

    /// Earliest instant at or after `t` that is outside every window.
    pub fn defer(&self, t: Time) -> Time {
        for &(s, e) in &self.windows {
            if t < s {
                return t;
            }
            if t < e {
                return e;
            }
        }
        t
    }

    /// The first window that ends after `cur` (it may already contain
    /// `cur`, or lie entirely in the future).
    pub fn next_blocking(&self, cur: Time) -> Option<(Time, Time)> {
        self.windows
            .iter()
            .find(|&&(s, e)| s > cur || e > cur)
            .copied()
    }

    /// The start of the first window beginning at or after `t`.
    pub fn next_start_at_or_after(&self, t: Time) -> Option<Time> {
        self.windows.iter().map(|&(s, _)| s).find(|&s| s >= t)
    }

    /// Completion time of `work` busy time starting at `start`, pausing
    /// during windows and resuming after each. Mirrors the noise model's
    /// preemption arithmetic over a static window list.
    pub fn finish_work(&self, start: Time, work: Duration) -> Time {
        let mut cur = self.defer(start);
        let mut left = work;
        loop {
            if left.is_zero() {
                return cur;
            }
            match self.next_blocking(cur) {
                Some((s, e)) if s <= cur => {
                    // Inside a window (possible when called directly).
                    cur = e;
                }
                Some((s, e)) if s < cur + left => {
                    let done = s.saturating_since(cur);
                    left = Duration::from_nanos(left.as_nanos() - done.as_nanos());
                    cur = e;
                }
                _ => return cur + left,
            }
        }
    }

    /// Total blocked time in `[0, until)`.
    pub fn stolen_until(&self, until: Time) -> Duration {
        let mut total = Duration::ZERO;
        for &(s, e) in &self.windows {
            if s >= until {
                break;
            }
            total += e.min(until).saturating_since(s);
        }
        total
    }

    /// Busy time available in `[start, deadline)`: the elapsed span minus
    /// the window time inside it.
    pub fn work_in(&self, start: Time, deadline: Time) -> Duration {
        let span = deadline.saturating_since(start);
        let blocked_ns = self
            .stolen_until(deadline)
            .as_nanos()
            .saturating_sub(self.stolen_until(start).as_nanos());
        Duration::from_nanos(span.as_nanos().saturating_sub(blocked_ns))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> Time {
        Time(ns)
    }

    #[test]
    fn new_sorts_merges_and_drops_empty() {
        let s = Schedule::new(vec![
            (t(50), t(60)),
            (t(10), t(20)),
            (t(15), t(30)), // overlaps the second
            (t(30), t(40)), // touches the merged block
            (t(70), t(70)), // empty, dropped
            (t(80), t(75)), // inverted, dropped
        ]);
        assert_eq!(s.windows(), &[(t(10), t(40)), (t(50), t(60))]);
    }

    #[test]
    fn defer_and_active() {
        let s = Schedule::new(vec![(t(100), t(200))]);
        assert_eq!(s.defer(t(50)), t(50));
        assert_eq!(s.defer(t(100)), t(200));
        assert_eq!(s.defer(t(150)), t(200));
        assert_eq!(s.defer(t(200)), t(200));
        assert!(s.active_at(t(100)));
        assert!(s.active_at(t(199)));
        assert!(!s.active_at(t(200)));
        assert!(!s.active_at(t(99)));
        assert!(Schedule::empty().defer(t(7)) == t(7));
    }

    #[test]
    fn finish_work_pauses_inside_windows() {
        let s = Schedule::new(vec![(t(100), t(200)), (t(300), t(310))]);
        // 150 ns of work from t=0: 100 before the first window, pause,
        // 50 more after it.
        assert_eq!(s.finish_work(t(0), Duration::from_nanos(150)), t(250));
        // Work spanning both windows: 100 before, 100 between, 50 after.
        assert_eq!(s.finish_work(t(0), Duration::from_nanos(250)), t(360));
        // Starting inside a window defers first.
        assert_eq!(s.finish_work(t(150), Duration::from_nanos(10)), t(210));
        // Zero work returns the deferred start.
        assert_eq!(s.finish_work(t(150), Duration::ZERO), t(200));
    }

    #[test]
    fn stolen_and_work_in_clamp_at_boundaries() {
        let s = Schedule::new(vec![(t(100), t(200)), (t(300), t(400))]);
        assert_eq!(s.stolen_until(t(50)), Duration::ZERO);
        assert_eq!(s.stolen_until(t(150)), Duration::from_nanos(50));
        assert_eq!(s.stolen_until(t(250)), Duration::from_nanos(100));
        assert_eq!(s.stolen_until(t(1000)), Duration::from_nanos(200));
        // work_in over [150, 350): 50 blocked by each window's tail/head.
        assert_eq!(s.work_in(t(150), t(350)), Duration::from_nanos(100));
        assert_eq!(s.work_in(t(0), t(100)), Duration::from_nanos(100));
        assert_eq!(s.work_in(t(100), t(200)), Duration::ZERO);
    }

    #[test]
    fn next_start_and_next_blocking() {
        let s = Schedule::new(vec![(t(100), t(200)), (t(300), t(400))]);
        assert_eq!(s.next_start_at_or_after(t(0)), Some(t(100)));
        assert_eq!(s.next_start_at_or_after(t(100)), Some(t(100)));
        assert_eq!(s.next_start_at_or_after(t(101)), Some(t(300)));
        assert_eq!(s.next_start_at_or_after(t(500)), None);
        assert_eq!(s.next_blocking(t(150)), Some((t(100), t(200))));
        assert_eq!(s.next_blocking(t(200)), Some((t(300), t(400))));
        assert_eq!(s.next_blocking(t(400)), None);
    }

    #[test]
    fn push_back_preserves_verbatim_windows() {
        let mut s = Schedule::empty();
        s.push_back(t(10), t(10)); // zero-duration kept
        s.push_back(t(10), t(20));
        s.push_back(t(30), t(35));
        assert_eq!(s.windows().len(), 3);
        assert_eq!(s.last(), Some((t(30), t(35))));
    }
}
