//! Fault plans: one run's complete, deterministic fault schedule.

use crate::schedule::Schedule;
use adapt_sim::time::{Duration, Time};

/// Retransmission knobs for the reliability layer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RelConfig {
    /// Base retransmission timeout, added on top of twice the estimated
    /// transfer time (the estimate stands in for an RTT measurement).
    pub rto: Duration,
    /// The timeout doubles per attempt; this caps how many retransmissions
    /// a single transfer may consume before the run aborts.
    pub max_retries: u32,
    /// Deterministic jitter drawn uniformly from `[0, jitter_frac ×
    /// backoff)` and added to each timeout, desynchronizing retransmit
    /// storms.
    pub jitter_frac: f64,
}

impl Default for RelConfig {
    fn default() -> RelConfig {
        RelConfig {
            rto: Duration::from_micros(100),
            max_retries: 16,
            jitter_frac: 0.1,
        }
    }
}

/// One bandwidth/latency degradation window, applied to every link.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Degrade {
    /// Capacity multiplier inside the window (e.g. `0.1` = 10% bandwidth).
    pub cap_factor: f64,
    /// Latency multiplier inside the window (e.g. `4.0` = 4× latency).
    pub lat_factor: f64,
    /// The `[start, end)` window.
    pub window: (Time, Time),
}

/// A complete fault schedule for one run.
///
/// The plan is pure data; the world derives the loss/jitter RNG stream
/// from `MasterSeed(seed)` with `StreamTag::Faults`, so the same plan and
/// seed reproduce the same drops bit-for-bit.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed for the fault RNG stream (loss draws, retransmit jitter).
    pub seed: u64,
    /// Per-hop loss probability in `[0, 1)`; a flow crossing `n` links is
    /// lost with probability `1 − (1 − loss)^n`.
    pub loss: f64,
    /// Windows during which every link is down: transfers launched inside
    /// a window are lost (and recovered by retransmission).
    pub down: Schedule,
    /// Bandwidth/latency degradation windows (applied to every link).
    pub degrade: Vec<Degrade>,
    /// Per-link degradation windows: `(link class label, window)`. The
    /// label matches the world's link class labels (e.g. `NicTx(3)`), so
    /// a plan can degrade one NIC and leave its peers alone — the hot-link
    /// ground truth. Labels naming no link in the run's fabric are
    /// silently inert (consistent with out-of-range kills).
    pub degrade_links: Vec<(String, Degrade)>,
    /// Injected rank stalls: `(rank, [start, end))` freezes well beyond
    /// the OS-noise model.
    pub stalls: Vec<(u32, (Time, Time))>,
    /// Permanent rank kills: `(rank, at)` stops the rank's progress
    /// engine at `at`, forever. In-flight flows to or from it drain as
    /// dropped and the audit ledger accounts their bytes as failed.
    pub kills: Vec<(u32, Time)>,
    /// Permanent node kills: `(node, at)` kills every rank placed on the
    /// node (expanded against the run's placement by the world).
    pub node_kills: Vec<(u32, Time)>,
    /// Retransmission configuration.
    pub rel: RelConfig,
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan {
            seed: 1,
            loss: 0.0,
            down: Schedule::empty(),
            degrade: Vec::new(),
            degrade_links: Vec::new(),
            stalls: Vec::new(),
            kills: Vec::new(),
            node_kills: Vec::new(),
            rel: RelConfig::default(),
        }
    }
}

impl FaultPlan {
    /// A plan that injects uniform per-hop loss and nothing else.
    pub fn lossy(seed: u64, loss: f64) -> FaultPlan {
        FaultPlan {
            seed,
            loss,
            ..FaultPlan::default()
        }
    }

    /// Add a rank stall window.
    pub fn with_stall(mut self, rank: u32, start: Time, end: Time) -> FaultPlan {
        self.stalls.push((rank, (start, end)));
        self
    }

    /// Add an all-links down window.
    pub fn with_down(mut self, start: Time, end: Time) -> FaultPlan {
        let mut w: Vec<(Time, Time)> = self.down.windows().to_vec();
        w.push((start, end));
        self.down = Schedule::new(w);
        self
    }

    /// Add a degradation window over every link.
    pub fn with_degrade(
        mut self,
        cap_factor: f64,
        lat_factor: f64,
        start: Time,
        end: Time,
    ) -> FaultPlan {
        self.degrade.push(Degrade {
            cap_factor,
            lat_factor,
            window: (start, end),
        });
        self
    }

    /// Add a degradation window over the links whose class label equals
    /// `label` (e.g. `NicTx(3)`).
    pub fn with_degrade_link(
        mut self,
        label: &str,
        cap_factor: f64,
        lat_factor: f64,
        start: Time,
        end: Time,
    ) -> FaultPlan {
        self.degrade_links.push((
            label.to_string(),
            Degrade {
                cap_factor,
                lat_factor,
                window: (start, end),
            },
        ));
        self
    }

    /// Override the base retransmission timeout.
    pub fn with_rto(mut self, rto: Duration) -> FaultPlan {
        self.rel.rto = rto;
        self
    }

    /// Kill one rank permanently at `at`.
    pub fn with_kill(mut self, rank: u32, at: Time) -> FaultPlan {
        self.kills.push((rank, at));
        self
    }

    /// Kill every rank on one node permanently at `at`.
    pub fn with_node_kill(mut self, node: u32, at: Time) -> FaultPlan {
        self.node_kills.push((node, at));
        self
    }

    /// True when the plan injects nothing: no loss, no outages, no
    /// degradation, no stalls, no kills. The world treats an inert plan
    /// exactly like no plan at all, so the fault-free fast path stays
    /// untouched.
    pub fn is_inert(&self) -> bool {
        self.loss <= 0.0
            && self.down.is_empty()
            && self.degrade.is_empty()
            && self.degrade_links.is_empty()
            && self.stalls.is_empty()
            && self.kills.is_empty()
            && self.node_kills.is_empty()
    }

    /// True when the plan can drop transfers that must be recovered by
    /// acks and retransmission timers: loss or outage windows. Kill-only
    /// plans deliberately return `false` — a killed peer is detected, not
    /// retransmitted to, so the per-lane timer machinery stays off and a
    /// kill scheduled past the end of the run costs nothing.
    pub fn needs_reliability(&self) -> bool {
        self.loss > 0.0 || !self.down.is_empty()
    }

    /// The stall schedule for one rank (windows normalized/merged).
    pub fn stalls_for(&self, rank: u32) -> Schedule {
        Schedule::new(
            self.stalls
                .iter()
                .filter(|&&(r, _)| r == rank)
                .map(|&(_, w)| w)
                .collect(),
        )
    }

    /// Parse the CLI `--faults` mini-grammar: comma-separated `key=value`
    /// terms.
    ///
    /// ```text
    /// loss=0.02                    per-hop loss probability
    /// rto=500us                    base retransmission timeout
    /// retries=8                    retry budget per transfer
    /// jitter=0.2                   backoff jitter fraction
    /// stall=3:10ms-20ms            freeze rank 3 over [10ms, 20ms)
    /// down=1ms-2ms                 all links down over [1ms, 2ms)
    /// degrade=0.1:5ms-8ms          all links at 10% bandwidth over [5ms, 8ms)
    /// degradelink=NicTx(3):0.1:5ms-8ms   only links labelled NicTx(3)
    /// kill=3:10ms                  kill rank 3 permanently at 10ms
    /// killnode=1:2ms               kill every rank on node 1 at 2ms
    /// ```
    ///
    /// Durations accept `ns`, `us`, `ms`, and `s` suffixes (bare numbers
    /// are nanoseconds).
    pub fn parse(spec: &str, seed: u64) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan {
            seed,
            ..FaultPlan::default()
        };
        for term in spec.split(',').filter(|t| !t.trim().is_empty()) {
            let (key, value) = term
                .split_once('=')
                .ok_or_else(|| format!("fault term {term:?} is not key=value"))?;
            match key.trim() {
                "loss" => {
                    let p: f64 = value.parse().map_err(|_| format!("bad loss {value:?}"))?;
                    if !(0.0..1.0).contains(&p) {
                        return Err(format!("loss {p} out of [0, 1)"));
                    }
                    plan.loss = p;
                }
                "rto" => plan.rel.rto = parse_duration(value)?,
                "retries" => {
                    plan.rel.max_retries = value
                        .parse()
                        .map_err(|_| format!("bad retries {value:?}"))?;
                }
                "jitter" => {
                    plan.rel.jitter_frac =
                        value.parse().map_err(|_| format!("bad jitter {value:?}"))?;
                }
                "stall" => {
                    let (rank, window) = value
                        .split_once(':')
                        .ok_or_else(|| format!("stall {value:?} is not RANK:START-END"))?;
                    let rank: u32 = rank.parse().map_err(|_| format!("bad rank {rank:?}"))?;
                    let (s, e) = parse_window(window)?;
                    plan.stalls.push((rank, (s, e)));
                }
                "down" => {
                    let (s, e) = parse_window(value)?;
                    plan = plan.with_down(s, e);
                }
                "degrade" => {
                    let (factor, window) = value
                        .split_once(':')
                        .ok_or_else(|| format!("degrade {value:?} is not FACTOR:START-END"))?;
                    let f: f64 = factor
                        .parse()
                        .map_err(|_| format!("bad degrade factor {factor:?}"))?;
                    if !f.is_finite() || f <= 0.0 {
                        return Err(format!("degrade factor {f} must be positive"));
                    }
                    let (s, e) = parse_window(window)?;
                    plan.degrade.push(Degrade {
                        cap_factor: f,
                        lat_factor: 1.0,
                        window: (s, e),
                    });
                }
                "degradelink" => {
                    // LABEL:FACTOR:START-END. The label is a link class
                    // label (`NicTx(3)`) and never contains ':' itself,
                    // so two splits take it apart unambiguously.
                    let (label, rest) = value.split_once(':').ok_or_else(|| {
                        format!("degradelink {value:?} is not LABEL:FACTOR:START-END")
                    })?;
                    let (factor, window) = rest.split_once(':').ok_or_else(|| {
                        format!("degradelink {value:?} is not LABEL:FACTOR:START-END")
                    })?;
                    if label.is_empty() {
                        return Err(format!("degradelink {value:?} has an empty label"));
                    }
                    let f: f64 = factor
                        .parse()
                        .map_err(|_| format!("bad degradelink factor {factor:?}"))?;
                    if !f.is_finite() || f <= 0.0 {
                        return Err(format!("degradelink factor {f} must be positive"));
                    }
                    let (s, e) = parse_window(window)?;
                    plan.degrade_links.push((
                        label.to_string(),
                        Degrade {
                            cap_factor: f,
                            lat_factor: 1.0,
                            window: (s, e),
                        },
                    ));
                }
                "kill" => {
                    let (rank, at) = parse_id_at(value, "kill", "RANK")?;
                    plan.kills.push((rank, at));
                }
                "killnode" => {
                    let (node, at) = parse_id_at(value, "killnode", "NODE")?;
                    plan.node_kills.push((node, at));
                }
                other => return Err(format!("unknown fault key {other:?}")),
            }
        }
        Ok(plan)
    }

    /// Render the plan back into the `--faults` mini-grammar. Terms that
    /// sit at their default are omitted, so the output is canonical:
    /// `parse(render(p), p.seed)` reproduces `p` exactly for any plan the
    /// grammar can express (degradation windows with a latency factor —
    /// a programmatic-only feature — render their capacity factor only).
    pub fn render(&self) -> String {
        let mut terms: Vec<String> = Vec::new();
        let def = RelConfig::default();
        if self.loss > 0.0 {
            terms.push(format!("loss={}", self.loss));
        }
        if self.rel.rto != def.rto {
            terms.push(format!("rto={}ns", self.rel.rto.as_nanos()));
        }
        if self.rel.max_retries != def.max_retries {
            terms.push(format!("retries={}", self.rel.max_retries));
        }
        if self.rel.jitter_frac != def.jitter_frac {
            terms.push(format!("jitter={}", self.rel.jitter_frac));
        }
        for &(rank, (s, e)) in &self.stalls {
            terms.push(format!("stall={rank}:{}", render_window(s, e)));
        }
        for &(s, e) in self.down.windows() {
            terms.push(format!("down={}", render_window(s, e)));
        }
        for d in &self.degrade {
            terms.push(format!(
                "degrade={}:{}",
                d.cap_factor,
                render_window(d.window.0, d.window.1)
            ));
        }
        for (label, d) in &self.degrade_links {
            terms.push(format!(
                "degradelink={label}:{}:{}",
                d.cap_factor,
                render_window(d.window.0, d.window.1)
            ));
        }
        for &(rank, at) in &self.kills {
            terms.push(format!("kill={rank}:{}ns", nanos_from_start(at)));
        }
        for &(node, at) in &self.node_kills {
            terms.push(format!("killnode={node}:{}ns", nanos_from_start(at)));
        }
        terms.join(",")
    }
}

/// Parse `ID:TIME` (the kill/killnode value shape).
fn parse_id_at(s: &str, key: &str, what: &str) -> Result<(u32, Time), String> {
    let (id, at) = s
        .split_once(':')
        .ok_or_else(|| format!("{key} {s:?} is not {what}:TIME"))?;
    let id: u32 = id
        .parse()
        .map_err(|_| format!("bad {key} {} {id:?}", what.to_lowercase()))?;
    Ok((id, Time::ZERO + parse_duration(at)?))
}

fn nanos_from_start(t: Time) -> u64 {
    (t - Time::ZERO).as_nanos()
}

fn render_window(s: Time, e: Time) -> String {
    format!("{}ns-{}ns", nanos_from_start(s), nanos_from_start(e))
}

/// Parse a duration with an optional `ns`/`us`/`ms`/`s` suffix.
pub fn parse_duration(s: &str) -> Result<Duration, String> {
    let s = s.trim();
    let (digits, mult) = if let Some(d) = s.strip_suffix("ns") {
        (d, 1u64)
    } else if let Some(d) = s.strip_suffix("us") {
        (d, 1_000)
    } else if let Some(d) = s.strip_suffix("ms") {
        (d, 1_000_000)
    } else if let Some(d) = s.strip_suffix('s') {
        (d, 1_000_000_000)
    } else {
        (s, 1)
    };
    let n: u64 = digits
        .trim()
        .parse()
        .map_err(|_| format!("bad duration {s:?}"))?;
    Ok(Duration::from_nanos(n.saturating_mul(mult)))
}

fn parse_window(s: &str) -> Result<(Time, Time), String> {
    let (a, b) = s
        .split_once('-')
        .ok_or_else(|| format!("window {s:?} is not START-END"))?;
    let start = Time::ZERO + parse_duration(a)?;
    let end = Time::ZERO + parse_duration(b)?;
    if end <= start {
        return Err(format!("window {s:?} is empty or inverted"));
    }
    Ok((start, end))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inert() {
        assert!(FaultPlan::default().is_inert());
        assert!(!FaultPlan::lossy(1, 0.01).is_inert());
        assert!(!FaultPlan::default()
            .with_stall(0, Time(0), Time(10))
            .is_inert());
    }

    #[test]
    fn parse_full_grammar() {
        let p = FaultPlan::parse(
            "loss=0.02,rto=500us,retries=8,jitter=0.2,stall=3:10ms-20ms,down=1ms-2ms,degrade=0.1:5ms-8ms",
            7,
        )
        .unwrap();
        assert_eq!(p.seed, 7);
        assert!((p.loss - 0.02).abs() < 1e-12);
        assert_eq!(p.rel.rto, Duration::from_micros(500));
        assert_eq!(p.rel.max_retries, 8);
        assert!((p.rel.jitter_frac - 0.2).abs() < 1e-12);
        assert_eq!(p.stalls, vec![(3, (Time(10_000_000), Time(20_000_000)))]);
        assert_eq!(p.down.windows(), &[(Time(1_000_000), Time(2_000_000))]);
        assert_eq!(p.degrade.len(), 1);
        assert!((p.degrade[0].cap_factor - 0.1).abs() < 1e-12);
    }

    #[test]
    fn parse_degradelink_grammar() {
        let p = FaultPlan::parse("degradelink=NicTx(3):0.25:5ms-8ms", 7).unwrap();
        assert_eq!(p.degrade_links.len(), 1);
        let (label, d) = &p.degrade_links[0];
        assert_eq!(label, "NicTx(3)");
        assert!((d.cap_factor - 0.25).abs() < 1e-12);
        assert_eq!(d.window, (Time(5_000_000), Time(8_000_000)));
        assert!(!p.is_inert(), "a per-link degrade plan is never inert");
        assert!(
            !p.needs_reliability(),
            "degradation slows links but loses nothing"
        );
        assert!(FaultPlan::parse("degradelink=NicTx(3):0.25", 1).is_err());
        assert!(FaultPlan::parse("degradelink=:0.25:5ms-8ms", 1).is_err());
        assert!(FaultPlan::parse("degradelink=NicTx(3):0:5ms-8ms", 1).is_err());
        assert!(FaultPlan::parse("degradelink=NicTx(3):x:5ms-8ms", 1).is_err());
    }

    #[test]
    fn parse_rejects_malformed_terms() {
        assert!(FaultPlan::parse("loss=1.5", 1).is_err());
        assert!(FaultPlan::parse("bogus=1", 1).is_err());
        assert!(FaultPlan::parse("stall=zz", 1).is_err());
        assert!(FaultPlan::parse("down=5ms-1ms", 1).is_err());
        assert!(FaultPlan::parse("loss", 1).is_err());
        assert!(FaultPlan::parse("degrade=0:1ms-2ms", 1).is_err());
    }

    #[test]
    fn duration_suffixes() {
        assert_eq!(parse_duration("10").unwrap(), Duration::from_nanos(10));
        assert_eq!(parse_duration("10ns").unwrap(), Duration::from_nanos(10));
        assert_eq!(parse_duration("3us").unwrap(), Duration::from_micros(3));
        assert_eq!(parse_duration("2ms").unwrap(), Duration::from_millis(2));
        assert_eq!(
            parse_duration("1s").unwrap(),
            Duration::from_nanos(1_000_000_000)
        );
        assert!(parse_duration("1.5ms").is_err());
    }

    #[test]
    fn parse_kill_grammar() {
        let p = FaultPlan::parse("kill=3:10ms,killnode=1:2ms,kill=7:500us", 9).unwrap();
        assert_eq!(p.kills, vec![(3, Time(10_000_000)), (7, Time(500_000))]);
        assert_eq!(p.node_kills, vec![(1, Time(2_000_000))]);
        assert!(!p.is_inert(), "a kill plan is never inert");
        assert!(
            !p.needs_reliability(),
            "kills alone must not arm the retransmission machinery"
        );
        assert!(FaultPlan::parse("kill=3", 1).is_err());
        assert!(FaultPlan::parse("kill=x:10ms", 1).is_err());
        assert!(FaultPlan::parse("killnode=1:abc", 1).is_err());
    }

    /// Tiny deterministic generator for the hand-rolled property loops.
    struct Gen(u64);
    impl Gen {
        fn next(&mut self) -> u64 {
            // splitmix64: enough mixing for test-case generation.
            self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
        fn below(&mut self, n: u64) -> u64 {
            self.next() % n.max(1)
        }
    }

    /// Generate a random grammar-expressible plan from the seed.
    fn random_plan(g: &mut Gen) -> FaultPlan {
        let mut p = FaultPlan::default();
        if g.below(2) == 1 {
            p.loss = (1 + g.below(98)) as f64 / 100.0;
        }
        if g.below(2) == 1 {
            p.rel.rto = Duration::from_nanos(1 + g.below(1_000_000));
        }
        if g.below(2) == 1 {
            p.rel.max_retries = g.below(64) as u32;
        }
        if g.below(2) == 1 {
            p.rel.jitter_frac = g.below(100) as f64 / 100.0;
        }
        for _ in 0..g.below(3) {
            let s = g.below(1_000_000);
            p = p.with_stall(
                g.below(16) as u32,
                Time(s),
                Time(s + 1 + g.below(1_000_000)),
            );
        }
        for _ in 0..g.below(3) {
            let s = g.below(1_000_000);
            p = p.with_down(Time(s), Time(s + 1 + g.below(1_000_000)));
        }
        for _ in 0..g.below(3) {
            let s = g.below(1_000_000);
            p = p.with_degrade(
                (1 + g.below(99)) as f64 / 100.0,
                1.0,
                Time(s),
                Time(s + 1 + g.below(1_000_000)),
            );
        }
        for _ in 0..g.below(3) {
            let s = g.below(1_000_000);
            let labels = ["NicTx(0)", "NicRx(3)", "Backbone", "Shm(1)"];
            p = p.with_degrade_link(
                labels[g.below(labels.len() as u64) as usize],
                (1 + g.below(99)) as f64 / 100.0,
                1.0,
                Time(s),
                Time(s + 1 + g.below(1_000_000)),
            );
        }
        for _ in 0..g.below(3) {
            p = p.with_kill(g.below(16) as u32, Time(g.below(1_000_000)));
        }
        for _ in 0..g.below(2) {
            p = p.with_node_kill(g.below(4) as u32, Time(g.below(1_000_000)));
        }
        p
    }

    #[test]
    fn render_parse_round_trip_property() {
        // Hand-rolled property loop: 200 seeded random plans covering
        // every grammar key must survive render -> parse bit-exactly.
        let mut g = Gen(0xADA97);
        for case in 0..200 {
            let p = random_plan(&mut g);
            let rendered = p.render();
            let back = FaultPlan::parse(&rendered, p.seed)
                .unwrap_or_else(|e| panic!("case {case}: render {rendered:?} unparseable: {e}"));
            assert_eq!(back, p, "case {case}: round trip changed {rendered:?}");
        }
    }

    #[test]
    fn default_plan_renders_empty_and_round_trips() {
        let p = FaultPlan::default();
        assert_eq!(p.render(), "");
        assert_eq!(FaultPlan::parse("", 1).unwrap(), p);
    }

    #[test]
    fn malformed_inputs_error_never_panic() {
        // Seeded fuzz over mangled grammar strings: parse must return
        // Err (or Ok for accidentally-valid mutants), never panic.
        let seeds = [
            "loss=0.02,rto=500us,retries=8,jitter=0.2",
            "stall=3:10ms-20ms,down=1ms-2ms,degrade=0.1:5ms-8ms",
            "kill=3:10ms,killnode=1:2ms",
        ];
        let garbage = b"=:,-xq0179 .\x00";
        let mut g = Gen(0xFA0175);
        for round in 0..400 {
            let base = seeds[round % seeds.len()];
            let mut bytes = base.as_bytes().to_vec();
            for _ in 0..1 + g.below(4) {
                let i = g.below(bytes.len() as u64) as usize;
                match g.below(3) {
                    0 => bytes[i] = garbage[g.below(garbage.len() as u64) as usize],
                    1 => {
                        bytes.remove(i);
                    }
                    _ => bytes.insert(i, garbage[g.below(garbage.len() as u64) as usize]),
                }
            }
            if let Ok(mangled) = String::from_utf8(bytes) {
                let _ = FaultPlan::parse(&mangled, round as u64); // must not panic
            }
        }
        // A few shapes that must specifically be rejected.
        for bad in [
            "kill=",
            "kill=:",
            "kill=1:",
            "kill=-1:5ms",
            "killnode=1:1.5ms",
            "stall=1:5ms-",
            "down=-",
            "degrade=:1ms-2ms",
            "degradelink=",
            "degradelink=NicTx(0)",
            "degradelink=NicTx(0):-0.5:1ms-2ms",
            "loss=nan",
            "jitter=,",
            "=",
            ",=,",
        ] {
            assert!(
                FaultPlan::parse(bad, 1).is_err(),
                "{bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn overlapping_down_windows_normalize() {
        // Overlap handling is pinned: with_down and the grammar both
        // funnel through Schedule::new, which merges touching windows.
        let p = FaultPlan::parse("down=1ms-3ms,down=2ms-4ms,down=10ms-11ms", 1).unwrap();
        assert_eq!(
            p.down.windows(),
            &[
                (Time(1_000_000), Time(4_000_000)),
                (Time(10_000_000), Time(11_000_000))
            ]
        );
        // Round trip renders the *normalized* windows and re-parses to
        // the same schedule.
        let back = FaultPlan::parse(&p.render(), 1).unwrap();
        assert_eq!(back.down.windows(), p.down.windows());
    }

    #[test]
    fn stalls_for_merges_per_rank() {
        let p = FaultPlan::default()
            .with_stall(2, Time(10), Time(30))
            .with_stall(2, Time(20), Time(40))
            .with_stall(5, Time(0), Time(5));
        assert_eq!(p.stalls_for(2).windows(), &[(Time(10), Time(40))]);
        assert_eq!(p.stalls_for(5).windows(), &[(Time(0), Time(5))]);
        assert!(p.stalls_for(0).is_empty());
    }
}
