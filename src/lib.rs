//! # adapt — an event-based adaptive collective communication framework
//!
//! A comprehensive Rust reproduction of *"ADAPT: An Event-Based Adaptive
//! Collective Communication Framework"* (Luo et al., HPDC 2018), built on a
//! deterministic flow-level cluster simulator.
//!
//! The paper's contribution lives inside Open MPI's communication engine,
//! below any public MPI API; this workspace therefore rebuilds the whole
//! stack — hardware topology, max-min-fair network, an MPI-like runtime
//! with eager/rendezvous protocols and noise-preemptible progress engines —
//! and implements ADAPT **and every comparator** as real programs on top of
//! it. See `DESIGN.md` for the substitution rationale and `EXPERIMENTS.md`
//! for paper-vs-measured results of every figure and table.
//!
//! ## Quick start
//!
//! ```
//! use adapt::prelude::*;
//! use std::sync::Arc;
//!
//! // A 4-node machine, 32 ranks, no noise.
//! let machine = profiles::minicluster(4, 2, 4);
//! let nranks = 32;
//!
//! // ADAPT broadcast of 1 MiB over the topology-aware tree.
//! let placement = Placement::block_cpu(machine.shape, nranks);
//! let tree = Arc::new(topology_aware_tree(&placement, TopoTreeConfig::default()));
//! let spec = BcastSpec {
//!     tree,
//!     msg_bytes: 1 << 20,
//!     cfg: AdaptConfig::default(),
//!     data: None,
//! };
//! let world = World::cpu(machine, nranks, ClusterNoise::silent(nranks));
//! let result = world.run(spec.programs());
//! println!("broadcast took {}", result.makespan);
//! assert!(result.makespan.as_nanos() > 0);
//! ```
//!
//! ## Crate map
//!
//! | Crate | Role |
//! |---|---|
//! | [`sim`] | deterministic discrete-event engine |
//! | [`topology`] | hwloc-like hardware model and machine profiles |
//! | [`net`] | flow-level max-min fair network |
//! | [`mpi`] | simulated MPI runtime (matching, protocols, progress engine) |
//! | [`obs`] | cross-layer tracing, time-series metrics, critical-path analysis |
//! | [`core`] | **the ADAPT framework** (event-driven bcast/reduce, trees) |
//! | [`collectives`] | baselines: blocking, Waitall, hierarchical, composite |
//! | [`noise`] | system-noise injection |
//! | [`faults`] | deterministic fault injection: loss, degradation, stalls |
//! | [`gpu`] | GPU substrate: staging buffers, stream-offloaded reduction |
//! | [`apps`] | ASP (parallel Floyd–Warshall) |

/// The discrete-event simulation engine.
pub use adapt_sim as sim;

/// Hardware topology model and machine profiles.
pub use adapt_topology as topology;

/// Flow-level network model.
pub use adapt_net as net;

/// Simulated MPI runtime.
pub use adapt_mpi as mpi;

/// Cross-layer observability: tracing, metrics, critical-path analysis.
pub use adapt_obs as obs;

/// The ADAPT event-driven collective framework (the paper's contribution).
pub use adapt_core as core;

/// Baseline collective implementations and the measurement runner.
pub use adapt_collectives as collectives;

/// System-noise injection.
pub use adapt_noise as noise;

/// Deterministic fault injection: lossy links, degradation windows, rank
/// stalls, and the reliability-layer configuration.
pub use adapt_faults as faults;

/// GPU cluster support.
pub use adapt_gpu as gpu;

/// Applications (ASP).
pub use adapt_apps as apps;

/// Everything a typical experiment needs, in one import.
pub mod prelude {
    pub use adapt_collectives::{
        run_once, run_trial, CollectiveCase, IntelAlg, Library, OpKind, Trial,
    };
    pub use adapt_core::{
        topology_aware_tree, topology_aware_tree_rooted, AdaptConfig, AllgatherSpec, AllreduceSpec,
        AlltoallSpec, BarrierSpec, BcastSpec, GatherSpec, ReduceData, ReduceExec, ReduceSpec,
        ScanSpec, ScatterSpec, TopoTreeConfig, Tree, TreeKind,
    };
    pub use adapt_faults::FaultPlan;
    pub use adapt_gpu::{run_gpu_once, GpuBcastSpec, GpuCase, GpuLibrary};
    pub use adapt_mpi::{AuditReport, Completion, Payload, ProgramCtx, RankProgram, Token, World};
    pub use adapt_noise::{ClusterNoise, NoiseSpec};
    pub use adapt_sim::rng::MasterSeed;
    pub use adapt_sim::time::{Duration, Time};
    pub use adapt_topology::{profiles, ClusterShape, MachineSpec, Placement};
}
