//! `adapt-cli` — run any collective configuration from the command line.
//!
//! ```text
//! adapt-cli --machine cori --nodes 8 --op bcast --lib adapt --msg 4194304 --noise 10 --seed 3
//! adapt-cli --machine psg --nodes 4 --op reduce --lib adapt --msg 33554432 --gpu
//! adapt-sim --op allreduce --nodes 4 --msg 1048576
//! ```

use adapt::collectives::{run_once_scoped, CollectiveCase, Library, NoiseScope, OpKind};
use adapt::prelude::*;

fn arg(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == &format!("--{key}"))
        .and_then(|i| args.get(i + 1).cloned())
}

fn flag(args: &[String], key: &str) -> bool {
    args.iter().any(|a| a == &format!("--{key}"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if flag(&args, "help") || args.is_empty() {
        eprintln!(
            "usage: adapt-cli [--machine cori|stampede2|psg|mini] [--nodes N] \
             [--op bcast|reduce|allreduce|allgather|alltoall|scan|scatter|gather|barrier] \
             [--lib adapt|default|default-topo|intel|cray|mvapich] \
             [--msg BYTES] [--noise PCT] [--seed S] [--gpu] [--trace FILE.csv] [--describe]"
        );
        return;
    }
    let nodes: u32 = arg(&args, "nodes")
        .map(|s| s.parse().expect("nodes"))
        .unwrap_or(4);
    let machine = match arg(&args, "machine").as_deref() {
        Some("stampede2") => profiles::stampede2(nodes),
        Some("psg") => profiles::psg(nodes),
        Some("mini") | None => profiles::minicluster(nodes, 2, 8),
        Some("cori") => profiles::cori(nodes),
        Some(other) => panic!("unknown machine {other}"),
    };
    let gpu = flag(&args, "gpu") || machine.shape.gpus_per_socket > 0;
    let msg: u64 = arg(&args, "msg")
        .map(|s| s.parse().expect("msg"))
        .unwrap_or(4 << 20);
    let noise: f64 = arg(&args, "noise")
        .map(|s| s.parse().expect("noise"))
        .unwrap_or(0.0);
    let seed: u64 = arg(&args, "seed")
        .map(|s| s.parse().expect("seed"))
        .unwrap_or(1);
    let op = arg(&args, "op").unwrap_or_else(|| "bcast".into());
    let lib = arg(&args, "lib").unwrap_or_else(|| "adapt".into());

    if gpu {
        let library = match lib.as_str() {
            "adapt" => GpuLibrary::OmpiAdapt,
            "default" => GpuLibrary::OmpiDefault,
            "mvapich" => GpuLibrary::Mvapich,
            other => panic!("unknown GPU library {other}"),
        };
        let opk = match op.as_str() {
            "bcast" => OpKind::Bcast,
            "reduce" => OpKind::Reduce,
            other => panic!("GPU runner supports bcast/reduce, not {other}"),
        };
        let case = GpuCase {
            nranks: machine.gpu_job_size(),
            machine,
            op: opk,
            library,
            msg_bytes: msg,
        };
        let (us, stats) = run_gpu_once(&case);
        println!(
            "{op} ({}) on {} GPUs, {msg} bytes: {us:.1} us",
            library.label(),
            case.nranks
        );
        println!(
            "  events={} messages={} rendezvous={}",
            stats.events, stats.messages, stats.rendezvous
        );
        println!("  audit: clean (invariants asserted by the runner)");
        return;
    }

    if flag(&args, "describe") {
        print!("{}", adapt::topology::describe_machine(&machine));
        return;
    }

    let nranks = machine.cpu_job_size();
    // Collectives beyond bcast/reduce run through their adapt-core specs.
    match op.as_str() {
        "allreduce" | "allgather" | "alltoall" | "scan" | "scatter" | "gather" | "barrier" => {
            let cfg = AdaptConfig::default();
            let programs = match op.as_str() {
                "allreduce" => AllreduceSpec {
                    nranks,
                    msg_bytes: msg,
                    cfg,
                    data: None,
                }
                .programs(),
                "allgather" => AllgatherSpec {
                    nranks,
                    msg_bytes: msg,
                    cfg,
                    data: None,
                }
                .programs(),
                "alltoall" => adapt::core::AlltoallSpec {
                    nranks,
                    msg_bytes: msg - msg % nranks as u64,
                    cfg,
                    data: None,
                }
                .programs(),
                "scan" => adapt::core::ScanSpec {
                    nranks,
                    msg_bytes: msg,
                    cfg,
                    data: None,
                }
                .programs(),
                "scatter" => ScatterSpec {
                    nranks,
                    msg_bytes: msg,
                    cfg,
                    data: None,
                }
                .programs(),
                "gather" => GatherSpec {
                    nranks,
                    msg_bytes: msg,
                    cfg,
                    data: None,
                }
                .programs(),
                _ => BarrierSpec { nranks }.programs(),
            };
            let noise_model = if noise > 0.0 {
                ClusterNoise::uniform(nranks, NoiseSpec::uniform_percent(noise), MasterSeed(seed))
            } else {
                ClusterNoise::silent(nranks)
            };
            let world = World::cpu(machine, nranks, noise_model);
            let res = world.run(programs);
            println!(
                "{op} (ADAPT) on {nranks} ranks, {msg} bytes: {:.1} us",
                res.makespan.as_micros_f64()
            );
            println!(
                "  events={} messages={} unexpected={}",
                res.stats.events, res.stats.messages, res.stats.unexpected_matches
            );
            println!(
                "  match_probes={} ({:.2}/event) share_recomputes={}",
                res.stats.match_probes,
                res.stats.match_probes as f64 / res.stats.events.max(1) as f64,
                res.stats.net_share_recomputes
            );
            println!("  {}", res.audit);
            return;
        }
        _ => {}
    }

    let library = match lib.as_str() {
        "adapt" => Library::OmpiAdapt,
        "default" => Library::OmpiDefault,
        "default-topo" => Library::OmpiDefaultTopo,
        "intel" => Library::IntelMpi,
        "cray" => Library::CrayMpi,
        "mvapich" => Library::Mvapich,
        other => panic!("unknown library {other}"),
    };
    let opk = match op.as_str() {
        "bcast" => OpKind::Bcast,
        "reduce" => OpKind::Reduce,
        other => panic!("unknown op {other}"),
    };
    let case = CollectiveCase {
        machine,
        nranks,
        op: opk,
        library,
        msg_bytes: msg,
    };
    if let Some(path) = arg(&args, "trace") {
        // Traced single run (ignores --noise scope subtleties).
        let noise_model =
            adapt::collectives::noise_for_case(&case, NoiseScope::PerNode, noise, seed);
        let world = World::cpu(case.machine.clone(), case.nranks, noise_model).enable_trace();
        let res = world.run(case.programs());
        std::fs::write(&path, adapt::mpi::trace_to_csv(&res.trace)).expect("write trace");
        println!(
            "{op} ({}) on {nranks} ranks: {:.1} us — {} trace events written to {path}",
            library.label(),
            res.makespan.as_micros_f64(),
            res.trace.len()
        );
        println!("  {}", res.audit);
        return;
    }
    let (us, stats) = run_once_scoped(&case, NoiseScope::PerNode, noise, seed);
    println!(
        "{op} ({}) on {nranks} ranks, {msg} bytes, {noise}% noise: {us:.1} us",
        library.label()
    );
    println!(
        "  events={} messages={} rendezvous={} unexpected={}",
        stats.events, stats.messages, stats.rendezvous, stats.unexpected_matches
    );
    println!(
        "  match_probes={} ({:.2}/event) share_recomputes={}",
        stats.match_probes,
        stats.match_probes as f64 / stats.events.max(1) as f64,
        stats.net_share_recomputes
    );
    println!("  audit: clean (invariants asserted by the runner)");
}
