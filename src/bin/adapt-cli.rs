//! `adapt-cli` — run any collective configuration from the command line.
//!
//! ```text
//! adapt-cli --machine cori --nodes 8 --op bcast --lib adapt --msg 4194304 --noise 10 --seed 3
//! adapt-cli --machine psg --nodes 4 --op reduce --lib adapt --msg 33554432 --gpu
//! adapt-cli --machine mini --obs-out run.json --whatif noise-off,scale-link=NicTx:2
//! adapt-sim --op allreduce --nodes 4 --msg 1048576
//! ```

use adapt::collectives::{
    run_intervened, run_once_scoped, world_for_case, CollectiveCase, Library, NoiseScope, OpKind,
};
use adapt::obs::{
    chrome_trace, critical_path, diff_runs, from_json, health_json, health_report_text,
    metrics_csv, predict, render_prediction, render_validation, summary_json, summary_report,
    to_json, AnyRecorder, Intervention, MemRecorder, Monitor, ObsData, StreamRecorder,
};
use adapt::prelude::*;

/// Exit code when the progress watchdog (or a dry event queue) cuts a
/// run short: distinguishes "the schedule was not survivable" from
/// argument errors and panics.
const EXIT_STALLED: i32 = 3;

/// Exit code when ranks were killed (`kill=`/`killnode=`) and the
/// survivors could not complete around them, or a live↔live transfer
/// exhausted its retry budget: a structured failure outcome, distinct
/// from both a plain deadlock ([`EXIT_STALLED`]) and argument errors.
const EXIT_FAILED: i32 = 4;

/// Every flag the CLI understands: `(name, value placeholder, help)`.
/// An empty placeholder marks a boolean flag. The usage string is
/// generated from this table, and [`arg`]/[`flag`] refuse names that are
/// not in it — a flag cannot be parsed without appearing in the usage.
const FLAGS: &[(&str, &str, &str)] = &[
    (
        "machine",
        "cori|stampede2|psg|mini",
        "machine profile (default mini)",
    ),
    ("nodes", "N", "node count (default 4)"),
    (
        "op",
        "bcast|reduce|allreduce|allgather|alltoall|scan|scatter|gather|barrier",
        "collective operation (default bcast)",
    ),
    (
        "lib",
        "adapt|default|default-topo|intel|cray|mvapich",
        "library preset (default adapt)",
    ),
    ("msg", "BYTES", "message size (default 4 MiB)"),
    ("noise", "PCT", "noise intensity percent (default 0)"),
    ("seed", "S", "master seed (default 1)"),
    (
        "threads",
        "N",
        "activate the sharded event core with N worker threads \
(byte-identical results; default: the pristine sequential core)",
    ),
    ("gpu", "", "run the GPU path (bcast/reduce only)"),
    ("trace", "FILE.csv", "write the event trace as CSV"),
    ("describe", "", "print the machine topology and exit"),
    (
        "trace-out",
        "FILE.json",
        "write a Chrome trace from a recorded run",
    ),
    ("metrics-out", "FILE.csv", "write time-series metrics CSV"),
    (
        "metrics-interval",
        "NS",
        "gauge sampling interval (default 10000)",
    ),
    ("critical-path", "", "print the critical-path report"),
    (
        "obs-out",
        "FILE.json",
        "export the full recording (adapt-obs-v1 JSON)",
    ),
    (
        "summary-out",
        "FILE.json",
        "stream a bounded-memory telemetry summary (adapt-obs-summary-v1 \
JSON) and print the percentile/hot-spot report",
    ),
    (
        "flight",
        "N",
        "keep a flight ring of the last N spans (streaming recorder); \
dumped to adapt-flight.json on a stall or failed audit",
    ),
    (
        "whatif",
        "SPEC[,SPEC...]",
        "predict interventions (noop|noise-off|rank-noise-off=R|stalls-off|\
scale-link=PAT:F|scale-layer=LAYER:F|speedup=LAYER:PCT); validated by re-run when possible",
    ),
    (
        "diff-against",
        "FILE.json",
        "diff this run against a baseline recording",
    ),
    (
        "faults",
        "loss=P,rto=DUR,retries=N,jitter=F,stall=R:S-E,down=S-E,degrade=F:S-E,\
kill=R:T,killnode=N:T",
        "fault-injection plan",
    ),
    ("watchdog-horizon", "DUR", "abort if no progress for DUR"),
    (
        "monitor",
        "NS",
        "online health monitor: snapshot the run every NS of simulated time \
and run the anomaly detectors (straggler, hot-link, retransmit-storm, flatline)",
    ),
    (
        "health-out",
        "FILE.json",
        "write the health report (adapt-obs-health-v1 JSON); implies \
--monitor at the default 10000ns cadence",
    ),
    ("help", "", "print this usage"),
];

fn usage() -> String {
    let mut o = String::from("usage: adapt-cli [flags]\n");
    for (name, value, help) in FLAGS {
        let left = if value.is_empty() {
            format!("--{name}")
        } else {
            format!("--{name} {value}")
        };
        if left.len() > 38 {
            o.push_str(&format!("  {left}\n  {:38}  {help}\n", ""));
        } else {
            o.push_str(&format!("  {left:38}  {help}\n"));
        }
    }
    o
}

fn known(key: &str) -> bool {
    FLAGS.iter().any(|&(name, _, _)| name == key)
}

fn arg(args: &[String], key: &str) -> Option<String> {
    assert!(known(key), "flag --{key} is missing from the FLAGS table");
    args.iter()
        .position(|a| a == &format!("--{key}"))
        .and_then(|i| args.get(i + 1).cloned())
}

fn flag(args: &[String], key: &str) -> bool {
    assert!(known(key), "flag --{key} is missing from the FLAGS table");
    args.iter().any(|a| a == &format!("--{key}"))
}

/// Observability flags: where to write the Chrome trace and metrics CSV,
/// whether to print the critical path, and the bounded-memory streaming
/// path (`--summary-out` / `--flight`).
struct ObsArgs {
    trace_out: Option<String>,
    metrics_out: Option<String>,
    critical: bool,
    interval_ns: u64,
    summary_out: Option<String>,
    flight: Option<usize>,
}

impl ObsArgs {
    fn parse(args: &[String]) -> ObsArgs {
        let o = ObsArgs {
            trace_out: arg(args, "trace-out"),
            metrics_out: arg(args, "metrics-out"),
            critical: flag(args, "critical-path"),
            interval_ns: arg(args, "metrics-interval")
                .map(|s| s.parse().expect("metrics-interval"))
                .unwrap_or(10_000),
            summary_out: arg(args, "summary-out"),
            flight: arg(args, "flight").map(|s| {
                let n: usize = s.parse().expect("flight");
                assert!(n >= 1, "--flight needs at least 1 span");
                n
            }),
        };
        assert!(
            !(o.streaming() && (o.trace_out.is_some() || o.metrics_out.is_some() || o.critical)),
            "--summary-out/--flight use the bounded-memory streaming recorder; \
             --trace-out/--metrics-out/--critical-path need the full recorder — pick one side"
        );
        o
    }

    fn wanted(&self) -> bool {
        self.trace_out.is_some() || self.metrics_out.is_some() || self.critical || self.streaming()
    }

    /// Streaming (aggregate-only) mode: memory stays O(ranks + links +
    /// buckets) no matter how long the run.
    fn streaming(&self) -> bool {
        self.summary_out.is_some() || self.flight.is_some()
    }

    /// The recorder this invocation asked for. Gauge sampling only runs
    /// when a metrics file was requested.
    fn recorder(&self) -> AnyRecorder {
        if self.streaming() {
            let mut r = StreamRecorder::new();
            if let Some(n) = self.flight {
                r = r.with_flight(n);
            }
            r.into()
        } else if self.metrics_out.is_some() {
            MemRecorder::with_metrics(self.interval_ns).into()
        } else {
            MemRecorder::new().into()
        }
    }

    /// Write/print whatever was requested from a recorded run.
    fn emit(&self, res: &adapt::mpi::RunResult) {
        if self.streaming() {
            let s = res
                .summary
                .as_ref()
                .expect("streaming run carries a summary");
            if let Some(path) = &self.summary_out {
                std::fs::write(path, summary_json(s)).expect("write summary");
                println!(
                    "  summary: {} msgs, {} flows aggregated online -> {path}",
                    s.msgs_posted, s.flow_starts
                );
            }
            print!("{}", summary_report(s));
            return;
        }
        let obs = res
            .obs
            .as_ref()
            .expect("recorded run carries observability data");
        if let Some(path) = &self.trace_out {
            std::fs::write(path, chrome_trace(obs)).expect("write trace");
            println!(
                "  trace: {} spans over {} msgs -> {path}",
                obs.dispatches.len() + obs.protocols.len(),
                obs.msgs.len()
            );
        }
        if let Some(path) = &self.metrics_out {
            std::fs::write(path, metrics_csv(obs)).expect("write metrics");
            println!("  metrics: {} samples -> {path}", obs.gauges.len());
        }
        if self.critical {
            print!("{}", critical_path(obs).render());
        }
    }
}

/// Health-monitor flags: the snapshot cadence (`--monitor`) and the
/// optional artifact path (`--health-out`, which implies monitoring at
/// the default cadence).
struct MonitorArgs {
    interval_ns: Option<u64>,
    health_out: Option<String>,
}

impl MonitorArgs {
    fn parse(args: &[String]) -> MonitorArgs {
        let interval_ns = arg(args, "monitor").map(|s| {
            let iv: u64 = s.parse().expect("monitor");
            assert!(iv >= 1, "--monitor needs a positive interval");
            iv
        });
        MonitorArgs {
            interval_ns,
            health_out: arg(args, "health-out"),
        }
    }

    fn active(&self) -> bool {
        self.interval_ns.is_some() || self.health_out.is_some()
    }

    /// Attach a monitor at the requested (or default) cadence.
    fn attach(&self, world: World) -> World {
        if self.active() {
            world.with_monitor(Monitor::new(self.interval_ns.unwrap_or(10_000)))
        } else {
            world
        }
    }

    /// Print the health summary and write the artifact from a completed
    /// monitored run. A run cut short by a stall or failure never gets
    /// here — its post-mortem is the watchdog diagnosis and flight tail.
    fn emit(&self, res: &adapt::mpi::RunResult) {
        if !self.active() {
            return;
        }
        let h = res
            .health
            .as_ref()
            .expect("monitored run carries a health report");
        print!("{}", health_report_text(h));
        if let Some(path) = &self.health_out {
            std::fs::write(path, health_json(h)).expect("write health");
            println!("  health artifact -> {path}");
        }
    }
}

/// Where a stall or audit post-mortem lands (see `--flight`).
const FLIGHT_DUMP_PATH: &str = "adapt-flight.json";

/// If the run completed but the audit is dirty and a flight ring was
/// kept, write the tail before the audit assert fires.
fn dump_flight_on_dirty_audit(res: &adapt::mpi::RunResult) {
    if let Some(frag) = &res.flight {
        std::fs::write(FLIGHT_DUMP_PATH, frag).expect("write flight dump");
        eprintln!("  flight recorder: audit failed, tail -> {FLIGHT_DUMP_PATH}");
    }
}

/// What-if flags: recording export, counterfactual predictions, and
/// baseline differencing. All three force a recorded run.
struct WhatIfArgs {
    ivs: Vec<Intervention>,
    diff_against: Option<String>,
    obs_out: Option<String>,
}

impl WhatIfArgs {
    fn parse(args: &[String]) -> WhatIfArgs {
        WhatIfArgs {
            ivs: arg(args, "whatif")
                .map(|list| {
                    list.split(',')
                        .map(|s| {
                            Intervention::parse(s.trim())
                                .unwrap_or_else(|e| panic!("--whatif {s}: {e}"))
                        })
                        .collect()
                })
                .unwrap_or_default(),
            diff_against: arg(args, "diff-against"),
            obs_out: arg(args, "obs-out"),
        }
    }

    fn wanted(&self) -> bool {
        !self.ivs.is_empty() || self.diff_against.is_some() || self.obs_out.is_some()
    }

    /// Emit everything what-if-related from a recorded run. `rerun`
    /// produces the ground-truth makespan of the equivalent real
    /// configuration, or `None` when the intervention is virtual-only
    /// (then the prediction prints without a validation line).
    fn emit(&self, obs: &ObsData, rerun: &dyn Fn(&Intervention) -> Option<u64>) {
        if let Some(path) = &self.obs_out {
            std::fs::write(path, to_json(obs)).expect("write recording");
            println!(
                "  recording: {} msgs, {} dispatches -> {path}",
                obs.msgs.len(),
                obs.dispatches.len()
            );
        }
        for iv in &self.ivs {
            match predict(obs, iv) {
                Ok(p) => match rerun(iv) {
                    Some(actual) => print!("{}", render_validation(iv, &p, actual)),
                    None => print!("{}", render_prediction(iv, &p)),
                },
                Err(e) => println!("whatif {}: refused — {e}", iv.describe()),
            }
        }
        if let Some(base) = &self.diff_against {
            let text = std::fs::read_to_string(base)
                .unwrap_or_else(|e| panic!("--diff-against {base}: {e}"));
            let a = from_json(&text).unwrap_or_else(|e| panic!("--diff-against {base}: {e}"));
            print!("{}", diff_runs(&a, obs).render());
        }
    }
}

/// Fault-injection flags: a `--faults` plan (see [`FaultPlan::parse`] for
/// the grammar) and an optional `--watchdog-horizon`.
struct FaultArgs {
    plan: Option<FaultPlan>,
    watchdog: Option<Duration>,
}

impl FaultArgs {
    fn parse(args: &[String], seed: u64) -> FaultArgs {
        FaultArgs {
            plan: arg(args, "faults").map(|s| {
                FaultPlan::parse(&s, seed).unwrap_or_else(|e| panic!("--faults {s}: {e}"))
            }),
            watchdog: arg(args, "watchdog-horizon").map(|s| {
                adapt::faults::parse_duration(&s)
                    .unwrap_or_else(|e| panic!("--watchdog-horizon {s}: {e}"))
            }),
        }
    }

    fn active(&self) -> bool {
        self.plan.is_some() || self.watchdog.is_some()
    }

    /// Attach the plan and watchdog, then run. An unsurvivable schedule
    /// never panics: a plain deadlock prints its diagnosis and exits with
    /// [`EXIT_STALLED`]; killed ranks the survivors could not complete
    /// around (or an exhausted live↔live retry budget) exit with
    /// [`EXIT_FAILED`]. Either way the flight-recorder tail, when one was
    /// kept, is dumped for the post-mortem.
    fn run(&self, mut world: World, programs: Vec<Box<dyn RankProgram>>) -> adapt::mpi::RunResult {
        if let Some(plan) = &self.plan {
            world = world.with_faults(plan.clone());
        }
        if let Some(h) = self.watchdog {
            world = world.with_watchdog(h);
        }
        match world.try_run(programs) {
            Ok(res) => res,
            Err(err) => {
                if let Some(frag) = err.flight() {
                    std::fs::write(FLIGHT_DUMP_PATH, frag).expect("write flight dump");
                    eprintln!("flight recorder: last spans -> {FLIGHT_DUMP_PATH}");
                }
                eprintln!("{err}");
                let code = match *err {
                    adapt::mpi::RunError::Stalled(_) => EXIT_STALLED,
                    adapt::mpi::RunError::RanksFailed(_)
                    | adapt::mpi::RunError::RetryBudgetExhausted { .. } => EXIT_FAILED,
                };
                std::process::exit(code);
            }
        }
    }

    /// One-line recovery summary; the CI smoke job greps for this. A
    /// monitored run appends its alert count, so the one grep also
    /// answers "did the detectors notice".
    fn summary(&self, res: &adapt::mpi::RunResult) {
        if self.plan.is_none() {
            return;
        }
        let s = &res.stats;
        let alerts = res
            .health
            .as_ref()
            .map(|h| format!(" alerts={}", h.total_alerts()))
            .unwrap_or_default();
        println!(
            "  recovery: drops={} retransmits={} acks={} dups={} backoff={}ns \
             killed={} detected={}{alerts}",
            s.drops_injected,
            s.retransmits,
            s.acks,
            s.duplicates_suppressed,
            s.backoff_time,
            s.ranks_killed,
            s.failures_detected
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if flag(&args, "help") || args.is_empty() {
        eprint!("{}", usage());
        return;
    }
    let nodes: u32 = arg(&args, "nodes")
        .map(|s| s.parse().expect("nodes"))
        .unwrap_or(4);
    let machine = match arg(&args, "machine").as_deref() {
        Some("stampede2") => profiles::stampede2(nodes),
        Some("psg") => profiles::psg(nodes),
        Some("mini") | None => profiles::minicluster(nodes, 2, 8),
        Some("cori") => profiles::cori(nodes),
        Some(other) => panic!("unknown machine {other}"),
    };
    let gpu = flag(&args, "gpu") || machine.shape.gpus_per_socket > 0;
    let msg: u64 = arg(&args, "msg")
        .map(|s| s.parse().expect("msg"))
        .unwrap_or(4 << 20);
    let noise: f64 = arg(&args, "noise")
        .map(|s| s.parse().expect("noise"))
        .unwrap_or(0.0);
    let seed: u64 = arg(&args, "seed")
        .map(|s| s.parse().expect("seed"))
        .unwrap_or(1);
    let op = arg(&args, "op").unwrap_or_else(|| "bcast".into());
    let lib = arg(&args, "lib").unwrap_or_else(|| "adapt".into());
    let threads: Option<usize> = arg(&args, "threads").map(|s| {
        let t: usize = s.parse().expect("threads");
        assert!(t >= 1, "--threads must be at least 1");
        t
    });
    // Route every CPU world through the sharded core when asked. The
    // results are byte-identical either way; the sharded run additionally
    // reports the par_epochs / cross_shard_events counters.
    let shard = move |world: World| -> World {
        match threads {
            Some(t) => world.with_threads(t),
            None => world,
        }
    };
    let faults = FaultArgs::parse(&args, seed);
    let whatif = WhatIfArgs::parse(&args);
    let monitor = MonitorArgs::parse(&args);

    if gpu {
        assert!(
            !faults.active(),
            "--faults/--watchdog-horizon run on the CPU path; drop --gpu"
        );
        assert!(
            !whatif.wanted(),
            "--whatif/--diff-against/--obs-out run on the CPU path"
        );
        assert!(
            !monitor.active(),
            "--monitor/--health-out snapshot the CPU event loop; drop --gpu"
        );
        assert!(
            threads.is_none(),
            "--threads shards the CPU event core; drop --gpu"
        );
        let library = match lib.as_str() {
            "adapt" => GpuLibrary::OmpiAdapt,
            "default" => GpuLibrary::OmpiDefault,
            "mvapich" => GpuLibrary::Mvapich,
            other => panic!("unknown GPU library {other}"),
        };
        let opk = match op.as_str() {
            "bcast" => OpKind::Bcast,
            "reduce" => OpKind::Reduce,
            other => panic!("GPU runner supports bcast/reduce, not {other}"),
        };
        let case = GpuCase {
            nranks: machine.gpu_job_size(),
            machine,
            op: opk,
            library,
            msg_bytes: msg,
        };
        let (us, stats) = run_gpu_once(&case);
        println!(
            "{op} ({}) on {} GPUs, {msg} bytes: {us:.1} us",
            library.label(),
            case.nranks
        );
        println!(
            "  events={} messages={} rendezvous={}",
            stats.events, stats.messages, stats.rendezvous
        );
        println!("  audit: clean (invariants asserted by the runner)");
        return;
    }

    if flag(&args, "describe") {
        print!("{}", adapt::topology::describe_machine(&machine));
        return;
    }

    let nranks = machine.cpu_job_size();
    // Collectives beyond bcast/reduce run through their adapt-core specs.
    match op.as_str() {
        "allreduce" | "allgather" | "alltoall" | "scan" | "scatter" | "gather" | "barrier" => {
            let cfg = AdaptConfig::default();
            let programs = match op.as_str() {
                "allreduce" => AllreduceSpec {
                    nranks,
                    msg_bytes: msg,
                    cfg,
                    data: None,
                }
                .programs(),
                "allgather" => AllgatherSpec {
                    nranks,
                    msg_bytes: msg,
                    cfg,
                    data: None,
                }
                .programs(),
                "alltoall" => adapt::core::AlltoallSpec {
                    nranks,
                    msg_bytes: msg - msg % nranks as u64,
                    cfg,
                    data: None,
                }
                .programs(),
                "scan" => adapt::core::ScanSpec {
                    nranks,
                    msg_bytes: msg,
                    cfg,
                    data: None,
                }
                .programs(),
                "scatter" => ScatterSpec {
                    nranks,
                    msg_bytes: msg,
                    cfg,
                    data: None,
                }
                .programs(),
                "gather" => GatherSpec {
                    nranks,
                    msg_bytes: msg,
                    cfg,
                    data: None,
                }
                .programs(),
                _ => BarrierSpec { nranks }.programs(),
            };
            let noise_model = if noise > 0.0 {
                ClusterNoise::uniform(nranks, NoiseSpec::uniform_percent(noise), MasterSeed(seed))
            } else {
                ClusterNoise::silent(nranks)
            };
            let obs = ObsArgs::parse(&args);
            assert!(
                !(whatif.wanted() && obs.streaming()),
                "--whatif/--diff-against/--obs-out need the full recorder; \
                 drop --summary-out/--flight"
            );
            let mut world = monitor.attach(shard(World::cpu(machine, nranks, noise_model)));
            if obs.wanted() || whatif.wanted() {
                world = world.with_recorder(obs.recorder());
            }
            let res = faults.run(world, programs);
            dump_flight_on_dirty_audit(&res);
            println!(
                "{op} (ADAPT) on {nranks} ranks, {msg} bytes: {:.1} us",
                res.makespan.as_micros_f64()
            );
            print!("{}", res.stats);
            faults.summary(&res);
            println!("  {}", res.audit);
            monitor.emit(&res);
            if obs.wanted() {
                obs.emit(&res);
            }
            if whatif.wanted() {
                // No runner-level re-run path for spec-built programs:
                // predictions print without a ground-truth line.
                let data = res.obs.as_ref().expect("recorder attached");
                whatif.emit(data, &|_| None);
            }
            return;
        }
        _ => {}
    }

    let library = match lib.as_str() {
        "adapt" => Library::OmpiAdapt,
        "default" => Library::OmpiDefault,
        "default-topo" => Library::OmpiDefaultTopo,
        "intel" => Library::IntelMpi,
        "cray" => Library::CrayMpi,
        "mvapich" => Library::Mvapich,
        other => panic!("unknown library {other}"),
    };
    let opk = match op.as_str() {
        "bcast" => OpKind::Bcast,
        "reduce" => OpKind::Reduce,
        other => panic!("unknown op {other}"),
    };
    let case = CollectiveCase {
        machine,
        nranks,
        op: opk,
        library,
        msg_bytes: msg,
    };
    if let Some(path) = arg(&args, "trace") {
        // Traced single run (ignores --noise scope subtleties).
        let noise_model =
            adapt::collectives::noise_for_case(&case, NoiseScope::PerNode, noise, seed);
        let world = monitor
            .attach(shard(World::cpu(
                case.machine.clone(),
                case.nranks,
                noise_model,
            )))
            .enable_trace();
        let res = faults.run(world, case.programs());
        std::fs::write(&path, adapt::mpi::trace_to_csv(&res.trace)).expect("write trace");
        println!(
            "{op} ({}) on {nranks} ranks: {:.1} us — {} trace events written to {path}",
            library.label(),
            res.makespan.as_micros_f64(),
            res.trace.len()
        );
        faults.summary(&res);
        println!("  {}", res.audit);
        monitor.emit(&res);
        return;
    }
    let obs = ObsArgs::parse(&args);
    assert!(
        !(whatif.wanted() && obs.streaming()),
        "--whatif/--diff-against/--obs-out need the full recorder; \
         drop --summary-out/--flight"
    );
    if obs.wanted() || whatif.wanted() {
        // Recorded run: same world and programs as run_once_scoped, with a
        // recorder attached. Results are identical either way — recording
        // never perturbs the simulation.
        let (world, programs) = world_for_case(&case, NoiseScope::PerNode, noise, seed);
        let res = faults.run(
            monitor.attach(shard(world)).with_recorder(obs.recorder()),
            programs,
        );
        dump_flight_on_dirty_audit(&res);
        assert!(res.audit.is_clean(), "{}", res.audit);
        println!(
            "{op} ({}) on {nranks} ranks, {msg} bytes, {noise}% noise: {:.1} us",
            library.label(),
            res.makespan.as_micros_f64()
        );
        print!("{}", res.stats);
        faults.summary(&res);
        println!("  audit: clean (invariants asserted by the runner)");
        monitor.emit(&res);
        if obs.wanted() {
            obs.emit(&res);
        }
        if whatif.wanted() {
            let data = res.obs.as_ref().expect("recorder attached");
            let no_faults = !faults.active();
            whatif.emit(data, &|iv| {
                // Ground truth: re-run the real simulator under the
                // equivalent configuration. Virtual-only interventions
                // (layer scaling) and faulted runs have no equivalent.
                if !no_faults {
                    return None;
                }
                run_intervened(&case, NoiseScope::PerNode, noise, seed, iv, 0)
                    .ok()
                    .map(|r| r.makespan.as_nanos())
            });
        }
        return;
    }
    if faults.active() {
        let (world, programs) = world_for_case(&case, NoiseScope::PerNode, noise, seed);
        let res = faults.run(monitor.attach(shard(world)), programs);
        assert!(res.audit.is_clean(), "{}", res.audit);
        println!(
            "{op} ({}) on {nranks} ranks, {msg} bytes, {noise}% noise: {:.1} us",
            library.label(),
            res.makespan.as_micros_f64()
        );
        print!("{}", res.stats);
        faults.summary(&res);
        println!("  audit: clean (invariants asserted by the runner)");
        monitor.emit(&res);
        return;
    }
    if threads.is_some() || monitor.active() {
        // Same world and programs as run_once_scoped, routed through the
        // sharded core and/or the health monitor — the printed times must
        // match the plain run byte for byte; only the epoch counters and
        // the health block are new.
        let (world, programs) = world_for_case(&case, NoiseScope::PerNode, noise, seed);
        let res = monitor.attach(shard(world)).run(programs);
        assert!(res.audit.is_clean(), "{}", res.audit);
        println!(
            "{op} ({}) on {nranks} ranks, {msg} bytes, {noise}% noise: {:.1} us",
            library.label(),
            res.makespan.as_micros_f64()
        );
        print!("{}", res.stats);
        println!("  audit: clean (invariants asserted by the runner)");
        monitor.emit(&res);
        return;
    }
    let (us, stats) = run_once_scoped(&case, NoiseScope::PerNode, noise, seed);
    println!(
        "{op} ({}) on {nranks} ranks, {msg} bytes, {noise}% noise: {us:.1} us",
        library.label()
    );
    print!("{stats}");
    println!("  audit: clean (invariants asserted by the runner)");
}

#[cfg(test)]
mod tests {
    use super::{known, usage, FLAGS};
    use adapt::mpi::WorldStats;

    /// Satellite guarantee: the CLI's stats block is generated from the
    /// struct itself, so every counter — present and future — appears.
    #[test]
    fn stats_display_covers_every_field() {
        let stats = WorldStats::default();
        let shown = format!("{stats}");
        for name in WorldStats::FIELD_NAMES {
            assert!(
                shown.contains(name),
                "WorldStats Display is missing field {name:?}:\n{shown}"
            );
        }
        assert_eq!(shown.lines().count(), WorldStats::FIELD_NAMES.len());
    }

    /// Satellite guarantee: every flag the CLI parses appears in the
    /// usage string. `arg`/`flag` assert membership in [`FLAGS`], and the
    /// usage is generated from the same table, so the two cannot drift.
    #[test]
    fn usage_lists_every_parsed_flag() {
        let text = usage();
        for (name, _, help) in FLAGS {
            assert!(
                text.contains(&format!("--{name}")),
                "usage is missing --{name}:\n{text}"
            );
            assert!(!help.is_empty(), "--{name} needs a help line");
        }
        assert!(known("whatif") && known("diff-against") && known("obs-out"));
    }

    #[test]
    #[should_panic(expected = "missing from the FLAGS table")]
    fn unknown_flags_cannot_be_parsed() {
        super::arg(&[], "no-such-flag");
    }
}
