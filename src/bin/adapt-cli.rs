//! `adapt-cli` — run any collective configuration from the command line.
//!
//! ```text
//! adapt-cli --machine cori --nodes 8 --op bcast --lib adapt --msg 4194304 --noise 10 --seed 3
//! adapt-cli --machine psg --nodes 4 --op reduce --lib adapt --msg 33554432 --gpu
//! adapt-sim --op allreduce --nodes 4 --msg 1048576
//! ```

use adapt::collectives::{
    run_once_scoped, world_for_case, CollectiveCase, Library, NoiseScope, OpKind,
};
use adapt::obs::{chrome_trace, critical_path, metrics_csv, MemRecorder};
use adapt::prelude::*;

/// Exit code when the progress watchdog (or a dry event queue) cuts a
/// run short: distinguishes "the schedule was not survivable" from
/// argument errors and panics.
const EXIT_STALLED: i32 = 3;

fn arg(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == &format!("--{key}"))
        .and_then(|i| args.get(i + 1).cloned())
}

fn flag(args: &[String], key: &str) -> bool {
    args.iter().any(|a| a == &format!("--{key}"))
}

/// Observability flags: where to write the Chrome trace and metrics CSV,
/// and whether to print the critical path.
struct ObsArgs {
    trace_out: Option<String>,
    metrics_out: Option<String>,
    critical: bool,
    interval_ns: u64,
}

impl ObsArgs {
    fn parse(args: &[String]) -> ObsArgs {
        ObsArgs {
            trace_out: arg(args, "trace-out"),
            metrics_out: arg(args, "metrics-out"),
            critical: flag(args, "critical-path"),
            interval_ns: arg(args, "metrics-interval")
                .map(|s| s.parse().expect("metrics-interval"))
                .unwrap_or(10_000),
        }
    }

    fn wanted(&self) -> bool {
        self.trace_out.is_some() || self.metrics_out.is_some() || self.critical
    }

    /// The recorder this invocation asked for. Gauge sampling only runs
    /// when a metrics file was requested.
    fn recorder(&self) -> MemRecorder {
        if self.metrics_out.is_some() {
            MemRecorder::with_metrics(self.interval_ns)
        } else {
            MemRecorder::new()
        }
    }

    /// Write/print whatever was requested from a recorded run.
    fn emit(&self, res: &adapt::mpi::RunResult) {
        let obs = res
            .obs
            .as_ref()
            .expect("recorded run carries observability data");
        if let Some(path) = &self.trace_out {
            std::fs::write(path, chrome_trace(obs)).expect("write trace");
            println!(
                "  trace: {} spans over {} msgs -> {path}",
                obs.dispatches.len() + obs.protocols.len(),
                obs.msgs.len()
            );
        }
        if let Some(path) = &self.metrics_out {
            std::fs::write(path, metrics_csv(obs)).expect("write metrics");
            println!("  metrics: {} samples -> {path}", obs.gauges.len());
        }
        if self.critical {
            print!("{}", critical_path(obs).render());
        }
    }
}

/// Fault-injection flags: a `--faults` plan (see [`FaultPlan::parse`] for
/// the grammar) and an optional `--watchdog-horizon`.
struct FaultArgs {
    plan: Option<FaultPlan>,
    watchdog: Option<Duration>,
}

impl FaultArgs {
    fn parse(args: &[String], seed: u64) -> FaultArgs {
        FaultArgs {
            plan: arg(args, "faults").map(|s| {
                FaultPlan::parse(&s, seed).unwrap_or_else(|e| panic!("--faults {s}: {e}"))
            }),
            watchdog: arg(args, "watchdog-horizon").map(|s| {
                adapt::faults::parse_duration(&s)
                    .unwrap_or_else(|e| panic!("--watchdog-horizon {s}: {e}"))
            }),
        }
    }

    fn active(&self) -> bool {
        self.plan.is_some() || self.watchdog.is_some()
    }

    /// Attach the plan and watchdog, then run. A stall diagnosis goes to
    /// stderr and exits with [`EXIT_STALLED`] — the one outcome where the
    /// simulator's answer is "this schedule is not survivable".
    fn run(&self, mut world: World, programs: Vec<Box<dyn RankProgram>>) -> adapt::mpi::RunResult {
        if let Some(plan) = &self.plan {
            world = world.with_faults(plan.clone());
        }
        if let Some(h) = self.watchdog {
            world = world.with_watchdog(h);
        }
        match world.try_run(programs) {
            Ok(res) => res,
            Err(diag) => {
                eprintln!("{diag}");
                std::process::exit(EXIT_STALLED);
            }
        }
    }

    /// One-line recovery summary; the CI smoke job greps for this.
    fn summary(&self, res: &adapt::mpi::RunResult) {
        if self.plan.is_none() {
            return;
        }
        let s = &res.stats;
        println!(
            "  recovery: drops={} retransmits={} acks={} dups={} backoff={}ns",
            s.drops_injected, s.retransmits, s.acks, s.duplicates_suppressed, s.backoff_time
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if flag(&args, "help") || args.is_empty() {
        eprintln!(
            "usage: adapt-cli [--machine cori|stampede2|psg|mini] [--nodes N] \
             [--op bcast|reduce|allreduce|allgather|alltoall|scan|scatter|gather|barrier] \
             [--lib adapt|default|default-topo|intel|cray|mvapich] \
             [--msg BYTES] [--noise PCT] [--seed S] [--gpu] [--trace FILE.csv] [--describe] \
             [--trace-out FILE.json] [--metrics-out FILE.csv] [--metrics-interval NS] \
             [--critical-path] [--faults loss=P,rto=DUR,retries=N,jitter=F,stall=R:S-E,\
down=S-E,degrade=F:S-E] [--watchdog-horizon DUR]"
        );
        return;
    }
    let nodes: u32 = arg(&args, "nodes")
        .map(|s| s.parse().expect("nodes"))
        .unwrap_or(4);
    let machine = match arg(&args, "machine").as_deref() {
        Some("stampede2") => profiles::stampede2(nodes),
        Some("psg") => profiles::psg(nodes),
        Some("mini") | None => profiles::minicluster(nodes, 2, 8),
        Some("cori") => profiles::cori(nodes),
        Some(other) => panic!("unknown machine {other}"),
    };
    let gpu = flag(&args, "gpu") || machine.shape.gpus_per_socket > 0;
    let msg: u64 = arg(&args, "msg")
        .map(|s| s.parse().expect("msg"))
        .unwrap_or(4 << 20);
    let noise: f64 = arg(&args, "noise")
        .map(|s| s.parse().expect("noise"))
        .unwrap_or(0.0);
    let seed: u64 = arg(&args, "seed")
        .map(|s| s.parse().expect("seed"))
        .unwrap_or(1);
    let op = arg(&args, "op").unwrap_or_else(|| "bcast".into());
    let lib = arg(&args, "lib").unwrap_or_else(|| "adapt".into());
    let faults = FaultArgs::parse(&args, seed);

    if gpu {
        assert!(
            !faults.active(),
            "--faults/--watchdog-horizon run on the CPU path; drop --gpu"
        );
        let library = match lib.as_str() {
            "adapt" => GpuLibrary::OmpiAdapt,
            "default" => GpuLibrary::OmpiDefault,
            "mvapich" => GpuLibrary::Mvapich,
            other => panic!("unknown GPU library {other}"),
        };
        let opk = match op.as_str() {
            "bcast" => OpKind::Bcast,
            "reduce" => OpKind::Reduce,
            other => panic!("GPU runner supports bcast/reduce, not {other}"),
        };
        let case = GpuCase {
            nranks: machine.gpu_job_size(),
            machine,
            op: opk,
            library,
            msg_bytes: msg,
        };
        let (us, stats) = run_gpu_once(&case);
        println!(
            "{op} ({}) on {} GPUs, {msg} bytes: {us:.1} us",
            library.label(),
            case.nranks
        );
        println!(
            "  events={} messages={} rendezvous={}",
            stats.events, stats.messages, stats.rendezvous
        );
        println!("  audit: clean (invariants asserted by the runner)");
        return;
    }

    if flag(&args, "describe") {
        print!("{}", adapt::topology::describe_machine(&machine));
        return;
    }

    let nranks = machine.cpu_job_size();
    // Collectives beyond bcast/reduce run through their adapt-core specs.
    match op.as_str() {
        "allreduce" | "allgather" | "alltoall" | "scan" | "scatter" | "gather" | "barrier" => {
            let cfg = AdaptConfig::default();
            let programs = match op.as_str() {
                "allreduce" => AllreduceSpec {
                    nranks,
                    msg_bytes: msg,
                    cfg,
                    data: None,
                }
                .programs(),
                "allgather" => AllgatherSpec {
                    nranks,
                    msg_bytes: msg,
                    cfg,
                    data: None,
                }
                .programs(),
                "alltoall" => adapt::core::AlltoallSpec {
                    nranks,
                    msg_bytes: msg - msg % nranks as u64,
                    cfg,
                    data: None,
                }
                .programs(),
                "scan" => adapt::core::ScanSpec {
                    nranks,
                    msg_bytes: msg,
                    cfg,
                    data: None,
                }
                .programs(),
                "scatter" => ScatterSpec {
                    nranks,
                    msg_bytes: msg,
                    cfg,
                    data: None,
                }
                .programs(),
                "gather" => GatherSpec {
                    nranks,
                    msg_bytes: msg,
                    cfg,
                    data: None,
                }
                .programs(),
                _ => BarrierSpec { nranks }.programs(),
            };
            let noise_model = if noise > 0.0 {
                ClusterNoise::uniform(nranks, NoiseSpec::uniform_percent(noise), MasterSeed(seed))
            } else {
                ClusterNoise::silent(nranks)
            };
            let obs = ObsArgs::parse(&args);
            let mut world = World::cpu(machine, nranks, noise_model);
            if obs.wanted() {
                world = world.with_recorder(Box::new(obs.recorder()));
            }
            let res = faults.run(world, programs);
            println!(
                "{op} (ADAPT) on {nranks} ranks, {msg} bytes: {:.1} us",
                res.makespan.as_micros_f64()
            );
            print!("{}", res.stats);
            faults.summary(&res);
            println!("  {}", res.audit);
            if obs.wanted() {
                obs.emit(&res);
            }
            return;
        }
        _ => {}
    }

    let library = match lib.as_str() {
        "adapt" => Library::OmpiAdapt,
        "default" => Library::OmpiDefault,
        "default-topo" => Library::OmpiDefaultTopo,
        "intel" => Library::IntelMpi,
        "cray" => Library::CrayMpi,
        "mvapich" => Library::Mvapich,
        other => panic!("unknown library {other}"),
    };
    let opk = match op.as_str() {
        "bcast" => OpKind::Bcast,
        "reduce" => OpKind::Reduce,
        other => panic!("unknown op {other}"),
    };
    let case = CollectiveCase {
        machine,
        nranks,
        op: opk,
        library,
        msg_bytes: msg,
    };
    if let Some(path) = arg(&args, "trace") {
        // Traced single run (ignores --noise scope subtleties).
        let noise_model =
            adapt::collectives::noise_for_case(&case, NoiseScope::PerNode, noise, seed);
        let world = World::cpu(case.machine.clone(), case.nranks, noise_model).enable_trace();
        let res = faults.run(world, case.programs());
        std::fs::write(&path, adapt::mpi::trace_to_csv(&res.trace)).expect("write trace");
        println!(
            "{op} ({}) on {nranks} ranks: {:.1} us — {} trace events written to {path}",
            library.label(),
            res.makespan.as_micros_f64(),
            res.trace.len()
        );
        faults.summary(&res);
        println!("  {}", res.audit);
        return;
    }
    let obs = ObsArgs::parse(&args);
    if obs.wanted() {
        // Recorded run: same world and programs as run_once_scoped, with a
        // recorder attached. Results are identical either way — recording
        // never perturbs the simulation.
        let (world, programs) = world_for_case(&case, NoiseScope::PerNode, noise, seed);
        let res = faults.run(world.with_recorder(Box::new(obs.recorder())), programs);
        assert!(res.audit.is_clean(), "{}", res.audit);
        println!(
            "{op} ({}) on {nranks} ranks, {msg} bytes, {noise}% noise: {:.1} us",
            library.label(),
            res.makespan.as_micros_f64()
        );
        print!("{}", res.stats);
        faults.summary(&res);
        println!("  audit: clean (invariants asserted by the runner)");
        obs.emit(&res);
        return;
    }
    if faults.active() {
        let (world, programs) = world_for_case(&case, NoiseScope::PerNode, noise, seed);
        let res = faults.run(world, programs);
        assert!(res.audit.is_clean(), "{}", res.audit);
        println!(
            "{op} ({}) on {nranks} ranks, {msg} bytes, {noise}% noise: {:.1} us",
            library.label(),
            res.makespan.as_micros_f64()
        );
        print!("{}", res.stats);
        faults.summary(&res);
        println!("  audit: clean (invariants asserted by the runner)");
        return;
    }
    let (us, stats) = run_once_scoped(&case, NoiseScope::PerNode, noise, seed);
    println!(
        "{op} ({}) on {nranks} ranks, {msg} bytes, {noise}% noise: {us:.1} us",
        library.label()
    );
    print!("{stats}");
    println!("  audit: clean (invariants asserted by the runner)");
}

#[cfg(test)]
mod tests {
    use adapt::mpi::WorldStats;

    /// Satellite guarantee: the CLI's stats block is generated from the
    /// struct itself, so every counter — present and future — appears.
    #[test]
    fn stats_display_covers_every_field() {
        let stats = WorldStats::default();
        let shown = format!("{stats}");
        for name in WorldStats::FIELD_NAMES {
            assert!(
                shown.contains(name),
                "WorldStats Display is missing field {name:?}:\n{shown}"
            );
        }
        assert_eq!(shown.lines().count(), WorldStats::FIELD_NAMES.len());
    }
}
