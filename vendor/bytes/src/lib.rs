//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal, API-compatible subset of `bytes::Bytes`: a
//! reference-counted, cheaply cloneable, zero-copy sliceable byte
//! container. Only the surface this workspace actually uses is provided.

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, zero-copy sliceable container of bytes.
///
/// Clones share the same backing allocation; [`Bytes::slice`] produces a
/// view into the same allocation without copying.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty `Bytes`.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// A `Bytes` backed by a static slice (copied here; the real crate
    /// borrows, but callers only rely on the value semantics).
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(bytes)
    }

    /// Copy `data` into a new allocation.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        let arc: Arc<[u8]> = Arc::from(data);
        let len = arc.len();
        Bytes {
            data: arc,
            start: 0,
            end: len,
        }
    }

    /// Number of bytes in this view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-view of this view, sharing the backing allocation.
    ///
    /// # Panics
    /// Panics when the range is out of bounds or inverted.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end, "slice range inverted: {begin} > {end}");
        assert!(end <= len, "slice out of bounds: {end} > {len}");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// Copy the view into an owned `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let arc: Arc<[u8]> = Arc::from(v);
        let len = arc.len();
        Bytes {
            data: arc,
            start: 0,
            end: len,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Bytes {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Bytes {
        Bytes::from(v.into_bytes())
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Bytes {
        Bytes::from(v.into_vec())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_ref() == other.as_ref()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_ref()
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref() == *other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slices_share_storage() {
        let b = Bytes::from((0u8..10).collect::<Vec<_>>());
        let s = b.slice(2..5);
        assert_eq!(s.as_ref(), &[2, 3, 4]);
        assert_eq!(s.len(), 3);
        let s2 = s.slice(1..);
        assert_eq!(s2.as_ref(), &[3, 4]);
    }

    #[test]
    fn equality_and_clone() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(b, vec![1u8, 2, 3]);
        assert!(Bytes::new().is_empty());
    }

    #[test]
    #[should_panic(expected = "slice out of bounds")]
    fn slice_oob_panics() {
        Bytes::from(vec![1u8, 2]).slice(0..3);
    }
}
