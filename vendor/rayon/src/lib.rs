//! Offline stand-in for `rayon`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a sequential shim: `par_iter` / `into_par_iter` return ordinary
//! `std` iterators, which already provide `map`, `collect`, `sum`, etc.
//! Nothing here runs concurrently — `par_iter` is literally `iter`, and
//! `join` runs its two closures back to back. There is no parallel
//! speedup, and no claim about what the real rayon would produce: code
//! whose results depend on execution order would behave differently
//! under the real crate. Code that wants actual threads should use
//! `adapt_sim::WorkerPool` (the bench harness does); this stub exists
//! only so sources written against the rayon API still compile.

pub mod prelude {
    /// `par_iter()` over a borrowed collection — sequential stand-in.
    pub trait IntoParallelRefIterator<'a> {
        /// Iterator type produced.
        type Iter: Iterator<Item = Self::Item>;
        /// Item type produced.
        type Item: 'a;
        /// Iterate sequentially (stand-in for rayon's parallel iteration).
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, T: 'a + Sync> IntoParallelRefIterator<'a> for [T] {
        type Iter = std::slice::Iter<'a, T>;
        type Item = &'a T;
        fn par_iter(&'a self) -> std::slice::Iter<'a, T> {
            self.iter()
        }
    }

    impl<'a, T: 'a + Sync> IntoParallelRefIterator<'a> for Vec<T> {
        type Iter = std::slice::Iter<'a, T>;
        type Item = &'a T;
        fn par_iter(&'a self) -> std::slice::Iter<'a, T> {
            self.iter()
        }
    }

    impl<'a, T: 'a + Sync, const N: usize> IntoParallelRefIterator<'a> for [T; N] {
        type Iter = std::slice::Iter<'a, T>;
        type Item = &'a T;
        fn par_iter(&'a self) -> std::slice::Iter<'a, T> {
            self.iter()
        }
    }

    /// `into_par_iter()` — sequential stand-in.
    pub trait IntoParallelIterator {
        /// Iterator type produced.
        type Iter: Iterator<Item = Self::Item>;
        /// Item type produced.
        type Item;
        /// Iterate sequentially (stand-in for rayon's parallel iteration).
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Iter = I::IntoIter;
        type Item = I::Item;
        fn into_par_iter(self) -> I::IntoIter {
            self.into_iter()
        }
    }

    /// Alias so code naming the trait compiles; every `std` iterator
    /// already has the combinators rayon's trait would add.
    pub use std::iter::Iterator as ParallelIterator;
}

/// Run two closures "in parallel" (sequentially here).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_iter() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let arr = [10u64, 20];
        assert_eq!(arr.par_iter().sum::<u64>(), 30);
        let squares: Vec<u32> = (0u32..4).into_par_iter().map(|x| x * x).collect();
        assert_eq!(squares, vec![0, 1, 4, 9]);
    }
}
