//! Offline stand-in for `proptest`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a deterministic property-testing harness covering the subset of
//! the proptest 1.x API the test suites use: the [`proptest!`] macro with
//! `#![proptest_config(..)]`, range / tuple / `Just` / `prop_oneof!` /
//! `prop_map` / `collection::vec` / `bool::ANY` strategies, and the
//! `prop_assert!` family.
//!
//! Differences from the real crate, by design:
//! - **No shrinking.** A failing case reports its case index and seed; the
//!   index is stable because generation is deterministic.
//! - **Deterministic generation.** Case `i` of test `t` always sees the
//!   same inputs (seeded from a hash of the test path and `i`), so CI
//!   failures reproduce locally without a persistence file.

pub mod test_runner {
    /// Failure raised by a `prop_assert!` inside a case body.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Build a failure with a message.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Per-test configuration (only `cases` is honoured).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic generator (SplitMix64) used for case inputs.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeded from a test identifier and case index, so every run of a
        /// given case sees identical inputs.
        pub fn deterministic(test_path: &str, case: u64) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_path.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform f64 in [0, 1).
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform usize in [0, bound).
        pub fn below(&mut self, bound: usize) -> usize {
            assert!(bound > 0, "below(0)");
            ((self.next_u64() as u128 * bound as u128) >> 64) as usize
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Value`.
    ///
    /// Unlike real proptest there is no value tree / shrinking: a strategy
    /// is just a deterministic sampler.
    pub trait Strategy {
        /// Type of value produced.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(std::rc::Rc::new(self))
        }
    }

    /// Type-erased strategy (cheaply cloneable).
    pub struct BoxedStrategy<V>(std::rc::Rc<dyn Strategy<Value = V>>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(std::rc::Rc::clone(&self.0))
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between type-erased alternatives ([`crate::prop_oneof!`]).
    pub struct OneOf<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> OneOf<V> {
        /// Build from a non-empty list of alternatives.
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> OneOf<V> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            OneOf { arms }
        }
    }

    impl<V> Strategy for OneOf<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.arms.len());
            self.arms[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                    let off = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                    (self.start as u128 + off as u128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as u128).wrapping_sub(start as u128) + 1;
                    if span > u64::MAX as u128 {
                        return rng.next_u64() as $t;
                    }
                    let off = ((rng.next_u64() as u128 * span) >> 64) as u64;
                    (start as u128 + off as u128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.next_f64() as $t) * (self.end - self.start)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    start + (rng.next_f64() as $t) * (end - start)
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($name:ident . $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specifications accepted by [`vec`].
    pub trait IntoLenRange {
        /// Inclusive-exclusive bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoLenRange for std::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    impl IntoLenRange for std::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end() + 1)
        }
    }

    impl IntoLenRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    /// Strategy yielding `Vec`s of values from `element`, with a length
    /// drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: impl IntoLenRange) -> VecStrategy<S> {
        let (min, max) = len.bounds();
        assert!(min < max, "empty length range");
        VecStrategy { element, min, max }
    }

    /// Output of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.min + rng.below(self.max - self.min);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for a uniformly random `bool`.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Uniformly random booleans (`proptest::bool::ANY`).
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod num {
    //! Placeholder module so `proptest::num::...` paths resolve.
}

/// Everything a test file typically imports.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declare deterministic property tests.
///
/// Supports the real macro's common form: an optional
/// `#![proptest_config(expr)]` header followed by `#[test] fn` items whose
/// arguments are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{
            cfg = (<$crate::test_runner::ProptestConfig as ::std::default::Default>::default());
            $($rest)*
        }
    };
}

/// Internal: expand one `fn` item at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..config.cases as u64 {
                let mut __rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                )+
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = __result {
                    panic!(
                        "proptest case {}/{} of `{}` failed: {}",
                        __case + 1,
                        config.cases,
                        stringify!($name),
                        e
                    );
                }
            }
        }
        $crate::__proptest_items!{ cfg = ($cfg); $($rest)* }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $arm:expr),+ $(,)?) => {
        // Weights are ignored; alternatives are sampled uniformly.
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Assert inside a proptest case body; failure aborts the case with a
/// report instead of unwinding immediately.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `prop_assert!(a == b)` with a value-carrying message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// `prop_assert!(a != b)` with a value-carrying message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, $($fmt)*);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_in_bounds(x in 3u32..10, f in 0.5f64..2.0, b in crate::bool::ANY) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.5..2.0).contains(&f));
            let _ = b;
        }

        #[test]
        fn vec_lengths_respected(v in crate::collection::vec((0u64..5, 0u64..5), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for (a, b) in v {
                prop_assert!(a < 5 && b < 5);
            }
        }

        #[test]
        fn oneof_and_map(x in prop_oneof![Just(1u32), (5u32..8).prop_map(|v| v * 10)]) {
            prop_assert!(x == 1 || (50..80).contains(&x), "got {x}");
        }
    }

    #[test]
    fn determinism_across_instances() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let s = 0u64..1000;
        let a: Vec<u64> = (0..20)
            .map(|i| s.generate(&mut TestRng::deterministic("t", i)))
            .collect();
        let b: Vec<u64> = (0..20)
            .map(|i| s.generate(&mut TestRng::deterministic("t", i)))
            .collect();
        assert_eq!(a, b);
    }
}
