//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a deterministic, dependency-free subset of the rand 0.9 API:
//! [`SeedableRng::seed_from_u64`], [`rngs::SmallRng`] (xoshiro256++, the
//! same generator family the real crate uses on 64-bit targets), and the
//! [`Rng`] extension methods `random` / `random_range` / `random_bool`.
//!
//! Determinism is the only property the simulator relies on: a given seed
//! must produce the same stream on every run and platform. Statistical
//! quality matches xoshiro256++, which is more than adequate for noise
//! modelling.

/// Low-level generator interface: a source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (high word of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Create a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a generator ("standard"
/// distribution in rand terms).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}
impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u16 {
        (rng.next_u64() >> 48) as u16
    }
}
impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}
impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}
impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}
impl Standard for i32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> i32 {
        rng.next_u32() as i32
    }
}
impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that `Rng::random_range` accepts.
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Multiply-shift rejection-free mapping; bias is < 2^-64,
                // irrelevant for simulation noise.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as u128 + hi as u128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128).wrapping_sub(start as u128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                let hi = ((rng.next_u64() as u128 * span) >> 64) as u64;
                (start as u128 + hi as u128) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let u = <$t as Standard>::sample(rng);
                start + u * (end - start)
            }
        }
    )*};
}
float_sample_range!(f32, f64);

/// High-level convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of `T`.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A value drawn uniformly from `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as Standard>::sample(self) < p
    }

    /// rand 0.8 spelling of [`Rng::random`], kept for drop-in use.
    fn r#gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// rand 0.8 spelling of [`Rng::random_range`].
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast generator: xoshiro256++ seeded via SplitMix64 — the
    /// same construction the real `SmallRng` uses on 64-bit platforms.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            // SplitMix64 expansion of the seed into four state words, as
            // recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias so `rngs::StdRng` also resolves.
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let a: u64 = SmallRng::seed_from_u64(9).random();
        let b: u64 = SmallRng::seed_from_u64(9).random();
        let c: u64 = SmallRng::seed_from_u64(10).random();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f = rng.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let g = rng.random_range(0.0f64..=1.0);
            assert!((0.0..=1.0).contains(&g));
            let n = rng.random_range(5u64..10);
            assert!((5..10).contains(&n));
        }
    }

    #[test]
    fn bool_probability_sane() {
        let mut rng = SmallRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }
}
