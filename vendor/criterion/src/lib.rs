//! Offline stand-in for `criterion`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal harness with the same API shape: benchmark groups,
//! `bench_function` / `bench_with_input`, `Bencher::iter`, `Throughput`,
//! and the `criterion_group!` / `criterion_main!` macros. Each benchmark
//! runs a handful of timed iterations and prints the mean — enough to
//! compare orders of magnitude, without criterion's statistics engine.

use std::time::Instant;

/// Number of timed iterations per benchmark (after one warm-up).
const ITERS: u32 = 10;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Parse CLI arguments (accepted and ignored here).
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: ITERS,
            _criterion: self,
        }
    }

    /// Benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Criterion {
        run_bench("", id, ITERS, f);
        self
    }
}

/// Declared throughput of a benchmark (printed, not analysed).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Bytes, decimal multiple variant.
    BytesDecimal(u64),
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            full: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.full)
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u32,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u32;
        self
    }

    /// Declare throughput (printed only).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Set measurement time (ignored; iteration count is fixed).
    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        run_bench(&self.name, &id.to_string(), self.sample_size, f);
        self
    }

    /// Run a benchmark with an input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl std::fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_bench(&self.name, &id.to_string(), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Finish the group (no-op; reporting happens per benchmark).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; collects timings for `iter`.
pub struct Bencher {
    samples: Vec<f64>,
    iters: u32,
}

impl Bencher {
    /// Time `routine`, one warm-up plus `sample_size` timed runs.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std::hint::black_box(routine());
        for _ in 0..self.iters {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed().as_secs_f64());
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(group: &str, id: &str, iters: u32, mut f: F) {
    let mut b = Bencher {
        samples: Vec::new(),
        iters,
    };
    f(&mut b);
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    if b.samples.is_empty() {
        println!("{label}: no samples");
        return;
    }
    let mean = b.samples.iter().sum::<f64>() / b.samples.len() as f64;
    let min = b.samples.iter().copied().fold(f64::INFINITY, f64::min);
    println!(
        "{label}: mean {:.3} ms, min {:.3} ms ({} samples)",
        mean * 1e3,
        min * 1e3,
        b.samples.len()
    );
}

/// Bundle benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

/// Opaque-value hint, re-exported like the real crate.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}
