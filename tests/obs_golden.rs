//! Observability determinism and acceptance tests.
//!
//! The recorder rides on the deterministic simulation clock, so its
//! exports must be bit-reproducible: two identical runs produce
//! byte-identical Chrome traces and metrics CSVs. And recording must be
//! free of observer effects: a run's results (per-rank completion times,
//! counters) are identical with recording on or off, quiet or noisy.

use adapt::collectives::{world_for_case, CollectiveCase, Library, NoiseScope, OpKind};
use adapt::obs::{
    chrome_trace, critical_path, metrics_csv, summary_json, summary_report, validate_chrome,
    validate_metrics_csv, validate_summary, Layer, MemRecorder, StreamRecorder,
};
use adapt::prelude::*;

/// The acceptance scenario: quick-scale fig8 broadcast — 128 ranks on a
/// 4-node Cori slice, OMPI-adapt, 1 MiB.
fn fig8_case() -> CollectiveCase {
    CollectiveCase {
        machine: profiles::cori(4),
        nranks: 128,
        op: OpKind::Bcast,
        library: Library::OmpiAdapt,
        msg_bytes: 1 << 20,
    }
}

fn run(noise: f64, seed: u64, record: bool) -> adapt::mpi::RunResult {
    let case = fig8_case();
    let (mut world, programs) = world_for_case(&case, NoiseScope::PerNode, noise, seed);
    if record {
        world = world.with_recorder(Box::new(MemRecorder::with_metrics(10_000)));
    }
    let res = world.run(programs);
    assert!(res.audit.is_clean(), "{}", res.audit);
    res
}

#[test]
fn exports_are_byte_identical_across_runs() {
    let a = run(0.0, 1, true);
    let b = run(0.0, 1, true);
    let (oa, ob) = (a.obs.as_ref().unwrap(), b.obs.as_ref().unwrap());
    let (ja, jb) = (chrome_trace(oa), chrome_trace(ob));
    assert_eq!(ja, jb, "Chrome trace must be bit-reproducible");
    let (ca, cb) = (metrics_csv(oa), metrics_csv(ob));
    assert_eq!(ca, cb, "metrics CSV must be bit-reproducible");

    // And both exports are well-formed by the repo's own validator.
    let summary = validate_chrome(&ja).expect("trace must validate");
    assert!(summary.complete_spans > 0, "expected dispatch spans");
    assert!(summary.async_spans > 0, "expected message/flow spans");
    assert!(summary.counters > 0, "expected gauge counters");
    let rows = validate_metrics_csv(&ca).expect("metrics must validate");
    assert!(rows > 0, "expected gauge samples");
}

#[test]
fn recording_is_free_and_critical_path_tiles_the_makespan() {
    for (noise, seed) in [(0.0, 1), (10.0, 42)] {
        let off = run(noise, seed, false);
        let res = run(noise, seed, true);
        // Observer-effect freedom: results identical with recording on.
        assert_eq!(
            off.per_rank_finish, res.per_rank_finish,
            "per-rank completion times moved with recording on \
             (noise={noise}, seed={seed})"
        );
        assert_eq!(off.makespan, res.makespan);
        assert_eq!(format!("{}", off.stats), format!("{}", res.stats));
        assert!(off.obs.is_none() && res.obs.is_some());

        let obs = res.obs.as_ref().unwrap();
        let cp = critical_path(obs);
        assert_eq!(
            cp.makespan_ns,
            res.makespan.as_nanos(),
            "critical path must start from the run's makespan"
        );
        assert_eq!(
            cp.total_ns(),
            cp.makespan_ns,
            "chain segments must sum exactly to the makespan"
        );
        // Gap-free chronological tiling of [0, makespan].
        let mut cursor = 0;
        for seg in &cp.segments {
            assert_eq!(seg.begin_ns, cursor, "segment chain has a gap/overlap");
            assert!(seg.end_ns >= seg.begin_ns);
            cursor = seg.end_ns;
        }
        assert_eq!(cursor, cp.makespan_ns);
        // A broadcast's path crosses the network and runs real callbacks.
        let totals = cp.layer_totals();
        let sum_of = |l: Layer| totals.iter().find(|(k, _)| *k == l).map_or(0, |(_, v)| *v);
        assert!(sum_of(Layer::Network) > 0, "path never crossed a link");
        assert!(sum_of(Layer::Callback) > 0, "path never ran a callback");
        // The report renders without panicking and names the makespan.
        let text = cp.render();
        assert!(text.contains(&format!("{:.3} us", cp.makespan_ns as f64 / 1000.0)));
    }
}

#[test]
fn streaming_summary_is_reproducible_validated_and_observer_free() {
    let stream = |noise: f64, seed: u64| {
        let case = fig8_case();
        let (world, programs) = world_for_case(&case, NoiseScope::PerNode, noise, seed);
        let res = world
            .with_recorder(Box::new(StreamRecorder::new()))
            .run(programs);
        assert!(res.audit.is_clean(), "{}", res.audit);
        res
    };
    let a = stream(10.0, 42);
    let b = stream(10.0, 42);
    let (sa, sb) = (a.summary.as_ref().unwrap(), b.summary.as_ref().unwrap());
    let (ja, jb) = (summary_json(sa), summary_json(sb));
    assert_eq!(ja, jb, "summary JSON must be bit-reproducible");

    // The export is well-formed by the repo's own validator, and the
    // check's shape matches the run.
    let check = validate_summary(&ja).expect("summary must validate");
    assert_eq!(check.ranks as u32, fig8_case().nranks);
    assert!(check.msgs > 0 && check.flows > 0 && check.hot_links > 0);

    // Observer-effect freedom: streaming aggregation never perturbs the
    // simulation, and the aggregate recorder carries no span buffers.
    let off = run(10.0, 42, false);
    assert_eq!(off.per_rank_finish, a.per_rank_finish);
    assert_eq!(off.makespan, a.makespan);
    assert!(a.obs.is_none(), "streaming runs build no ObsData");

    // The human-readable report renders and names the headline numbers.
    let text = summary_report(sa);
    assert!(text.contains("streaming telemetry summary"));
    assert!(text.contains("posted->matched"));
}

#[test]
fn stall_dumps_a_valid_flight_fragment() {
    // A guaranteed stall under a tight watchdog: the streaming recorder's
    // flight ring must come back attached to the diagnosis as a
    // self-contained Chrome-trace fragment that passes the validator.
    let case = CollectiveCase {
        machine: profiles::minicluster(2, 2, 4),
        nranks: 16,
        op: OpKind::Bcast,
        library: Library::OmpiAdapt,
        msg_bytes: 256 << 10,
    };
    let (world, programs) = world_for_case(&case, NoiseScope::PerNode, 0.0, 1);
    let plan = FaultPlan::lossy(1, 0.0).with_stall(
        2,
        Time::ZERO,
        Time::ZERO + Duration::from_millis(3_600_000),
    );
    let err = match world
        .with_faults(plan)
        .with_watchdog(Duration::from_millis(1))
        .with_recorder(Box::new(StreamRecorder::new().with_flight(512)))
        .try_run(programs)
    {
        Err(e) => e,
        Ok(_) => panic!("an hour-long stall must trip a 1ms watchdog"),
    };
    let adapt::mpi::RunError::Stalled(diag) = err.as_ref() else {
        panic!("a stall without kills must classify as Stalled: {err}");
    };
    assert!(diag.watchdog_fired);
    let frag = diag
        .flight
        .as_ref()
        .expect("a streaming recorder with a flight ring must dump its tail");
    let summary = validate_chrome(frag).expect("flight fragment must validate");
    assert!(summary.complete_spans > 0, "tail must hold recent spans");
    assert!(frag.contains("flight_spans_dropped"));
}

#[test]
fn phase_spans_nest_and_cover_hierarchical_runs() {
    // A hierarchical (phased) library emits phase begin/end marks; the
    // trace still validates, and every begin has a matching end.
    let case = CollectiveCase {
        machine: profiles::minicluster(2, 2, 4),
        nranks: 16,
        op: OpKind::Bcast,
        library: Library::IntelMpi,
        msg_bytes: 256 << 10,
    };
    let (world, programs) = world_for_case(&case, NoiseScope::PerNode, 0.0, 1);
    let res = world
        .with_recorder(Box::new(MemRecorder::new()))
        .run(programs);
    assert!(res.audit.is_clean(), "{}", res.audit);
    let obs = res.obs.as_ref().unwrap();
    let begins = obs.phases.iter().filter(|p| p.begin).count();
    let ends = obs.phases.iter().filter(|p| !p.begin).count();
    assert!(begins > 0, "hierarchical run recorded no phase marks");
    assert_eq!(begins, ends, "unbalanced phase begin/end marks");
    validate_chrome(&chrome_trace(obs)).expect("phased trace must validate");
}
