//! Chaos suite: seeded randomized fault schedules against the reliability
//! layer.
//!
//! The contract under test is the tentpole claim of the fault-injection
//! work: **any survivable fault schedule changes timing, never data**.
//! Every test here runs a real collective carrying real payload bytes
//! under injected loss, link-down windows, degradation windows, or rank
//! stalls, and asserts
//!
//! 1. byte-identical results to a fault-free run (assembled broadcast
//!    buffers, numerically exact reductions),
//! 2. a clean end-of-run audit (the faulted byte ledger balances:
//!    `injected == delivered + dropped`, exactly-once delivery),
//! 3. determinism — the same seed reproduces the same trace, stats, and
//!    per-rank finish times bit-for-bit,
//! 4. an inert plan is indistinguishable from no plan at all,
//! 5. a guaranteed stall trips the watchdog with a per-rank diagnosis
//!    instead of hanging.

use adapt::collectives::{run_once_faulted, CollectiveCase, Library, NoiseScope, OpKind};
use adapt::prelude::*;
use bytes::Bytes;
use std::sync::Arc;

/// Broadcast payload with a recognizable, position-dependent pattern.
fn payload(len: usize) -> Vec<u8> {
    (0..len as u32).map(|i| (i % 249) as u8).collect()
}

/// Absolute simulated time `us` microseconds after start.
fn t_us(us: u64) -> Time {
    Time::ZERO + Duration::from_micros(us)
}

/// Build the standard chaos workload: 16-rank ADAPT broadcast of real
/// bytes on the two-node minicluster.
fn bcast_world(data: &[u8]) -> (World, Vec<Box<dyn RankProgram>>) {
    let machine = profiles::minicluster(2, 2, 4);
    let nranks = 16;
    let placement = Placement::block_cpu(machine.shape, nranks);
    let tree = Arc::new(topology_aware_tree(&placement, TopoTreeConfig::default()));
    let spec = BcastSpec {
        tree,
        msg_bytes: data.len() as u64,
        cfg: AdaptConfig::default().with_seg_size(32 * 1024),
        data: Some(Bytes::from(data.to_vec())),
    };
    let world = World::cpu(machine, nranks, ClusterNoise::silent(nranks));
    (world, spec.programs())
}

/// Assert every rank assembled exactly `data`.
fn assert_bytes(res: adapt::mpi::RunResult, data: &[u8]) {
    assert!(res.audit.is_clean(), "{}", res.audit);
    for (r, p) in res.programs.into_iter().enumerate() {
        let any: Box<dyn std::any::Any> = p;
        let b = any.downcast::<adapt::core::AdaptBcast>().unwrap();
        assert_eq!(b.assembled().unwrap(), data, "rank {r}");
    }
}

#[test]
fn lossy_bcast_is_byte_identical_and_recovers() {
    let data = payload(300_000);
    let (world, programs) = bcast_world(&data);
    let plan = FaultPlan::lossy(7, 0.02).with_rto(Duration::from_micros(60));
    let res = world.with_faults(plan).run(programs);
    assert!(res.stats.drops_injected > 0, "2% loss must drop something");
    assert!(res.stats.retransmits > 0, "drops must trigger retransmits");
    assert!(res.stats.acks > 0, "delivered transfers must be acked");
    assert_bytes(res, &data);
}

#[test]
fn lossy_reduce_is_numerically_exact() {
    let machine = profiles::minicluster(2, 2, 4);
    let nranks = 16u32;
    let elems = 4000usize;
    let contributions: Arc<Vec<Bytes>> = Arc::new(
        (0..nranks)
            .map(|r| {
                let v: Vec<f64> = (0..elems).map(|i| ((r as usize + i) % 37) as f64).collect();
                Bytes::from(adapt::mpi::f64_to_bytes(&v))
            })
            .collect(),
    );
    let expected: Vec<f64> = (0..elems)
        .map(|i| (0..nranks).map(|r| ((r as usize + i) % 37) as f64).sum())
        .collect();
    let placement = Placement::block_cpu(machine.shape, nranks);
    let tree = Arc::new(topology_aware_tree(&placement, TopoTreeConfig::default()));
    let spec = ReduceSpec {
        tree,
        msg_bytes: (elems * 8) as u64,
        cfg: AdaptConfig::default().with_seg_size(8 * 1024),
        data: ReduceData::Real {
            op: adapt::mpi::ReduceOp::Sum,
            dtype: adapt::mpi::DType::F64,
            contributions,
        },
        exec: ReduceExec::Cpu,
    };
    let world = World::cpu(machine, nranks, ClusterNoise::silent(nranks));
    let plan = FaultPlan::lossy(11, 0.03).with_rto(Duration::from_micros(60));
    let res = world.with_faults(plan).run(spec.programs());
    assert!(res.audit.is_clean(), "{}", res.audit);
    assert!(
        res.stats.retransmits > 0,
        "3% loss must trigger retransmits"
    );
    let root: Box<dyn std::any::Any> = res.programs.into_iter().next().unwrap();
    let root = root.downcast::<adapt::core::AdaptReduce>().unwrap();
    assert_eq!(
        adapt::mpi::bytes_to_f64(&root.result().unwrap()),
        expected,
        "loss must never corrupt a reduction"
    );
}

#[test]
fn same_seed_reproduces_the_same_faulted_run() {
    let data = payload(200_000);
    let run = || {
        let (world, programs) = bcast_world(&data);
        let plan = FaultPlan::lossy(42, 0.02).with_rto(Duration::from_micros(80));
        world.with_faults(plan).run(programs)
    };
    let a = run();
    let b = run();
    assert!(a.stats.drops_injected > 0);
    assert_eq!(a.stats, b.stats, "same seed must reproduce every counter");
    assert_eq!(
        a.per_rank_finish, b.per_rank_finish,
        "same seed must reproduce per-rank completion times exactly"
    );
    assert_eq!(a.makespan, b.makespan);
}

#[test]
fn inert_plan_is_indistinguishable_from_no_plan() {
    let data = payload(150_000);
    let (world, programs) = bcast_world(&data);
    let baseline = world.run(programs);
    let (world, programs) = bcast_world(&data);
    let plan = FaultPlan::lossy(9, 0.0); // zero loss, no windows: inert
    assert!(plan.is_inert());
    let faulted = world.with_faults(plan).run(programs);
    assert_eq!(
        baseline.stats, faulted.stats,
        "inert plan must attach nothing"
    );
    assert_eq!(baseline.per_rank_finish, faulted.per_rank_finish);
}

#[test]
fn faults_change_timing_never_data() {
    // The makespan under loss must not beat the fault-free run: drops
    // only ever cost time (drained bandwidth + RTO waits), never save it.
    let data = payload(200_000);
    let (world, programs) = bcast_world(&data);
    let clean = world.run(programs);
    let (world, programs) = bcast_world(&data);
    let plan = FaultPlan::lossy(3, 0.05).with_rto(Duration::from_micros(60));
    let faulted = world.with_faults(plan).run(programs);
    assert!(faulted.stats.retransmits > 0);
    assert!(
        faulted.makespan >= clean.makespan,
        "loss cannot speed a run up: clean={} faulted={}",
        clean.makespan,
        faulted.makespan
    );
    assert_bytes(faulted, &data);
}

#[test]
fn down_window_is_survivable() {
    // Take the whole fabric down for a window mid-run: every flow
    // launched inside it is dropped, and the reliability layer must
    // carry the collective across the outage.
    let data = payload(200_000);
    let (world, programs) = bcast_world(&data);
    let plan = FaultPlan::lossy(5, 0.0)
        .with_down(t_us(40), t_us(160))
        .with_rto(Duration::from_micros(60));
    let res = world.with_faults(plan).run(programs);
    assert!(
        res.stats.drops_injected > 0,
        "the outage must hit in-window launches"
    );
    assert!(res.stats.retransmits > 0);
    assert_bytes(res, &data);
}

#[test]
fn degrade_window_slows_but_never_corrupts() {
    let data = payload(200_000);
    let (world, programs) = bcast_world(&data);
    let clean = world.run(programs);
    let (world, programs) = bcast_world(&data);
    // 5% capacity, 4x latency across a window covering the whole run.
    let plan = FaultPlan::lossy(5, 0.0).with_degrade(
        0.05,
        4.0,
        Time::ZERO,
        Time::ZERO + Duration::from_millis(100),
    );
    let res = world.with_faults(plan).run(programs);
    assert!(
        res.makespan > clean.makespan,
        "a 20x-slower fabric must inflate the makespan: clean={} degraded={}",
        clean.makespan,
        res.makespan
    );
    assert_bytes(res, &data);
}

#[test]
fn stalled_rank_delays_but_never_corrupts() {
    let data = payload(150_000);
    let (world, programs) = bcast_world(&data);
    let clean = world.run(programs);
    // Stall a mid-tree rank well past the fault-free makespan: the whole
    // subtree must wait for it and still assemble the right bytes.
    let (world, programs) = bcast_world(&data);
    let stall_end = clean.makespan.as_nanos() * 2;
    let stall_end = Time::ZERO + Duration::from_nanos(stall_end);
    let plan = FaultPlan::lossy(5, 0.0).with_stall(3, Time::ZERO, stall_end);
    let res = world.with_faults(plan).run(programs);
    assert!(
        res.per_rank_finish[3] >= stall_end,
        "rank 3 cannot finish before its stall window ends"
    );
    assert!(res.makespan > clean.makespan);
    assert_bytes(res, &data);
}

#[test]
fn randomized_schedules_are_all_survivable() {
    // Seeded pseudo-random fault schedules: loss rate, an outage window,
    // and a rank stall all derived from the seed. Every schedule must be
    // survived byte-correct with a clean audit.
    let data = payload(120_000);
    for seed in 0..6u64 {
        let loss = 0.005 + 0.008 * (seed as f64);
        let down_start = 30 + 17 * seed;
        let stall_rank = (seed * 5 % 16) as u32;
        let plan = FaultPlan::lossy(seed, loss)
            .with_down(t_us(down_start), t_us(down_start + 40))
            .with_stall(stall_rank, t_us(10 * seed), t_us(10 * seed + 50))
            .with_rto(Duration::from_micros(80));
        let (world, programs) = bcast_world(&data);
        let res = world.with_faults(plan).run(programs);
        assert!(
            res.stats.drops_injected > 0,
            "seed {seed}: outage must drop flows"
        );
        assert_bytes(res, &data);
    }
}

#[test]
fn chaos_matrix_every_library_survives_loss() {
    // Every comparator library, broadcast and reduce, under seeded loss:
    // the reliability layer sits below the protocol layer, so recovery
    // must be algorithm-agnostic. `run_once_faulted` asserts the audit.
    let machine = profiles::minicluster(2, 2, 4);
    for library in [
        Library::OmpiAdapt,
        Library::OmpiDefault,
        Library::OmpiBlocking,
        Library::IntelMpi,
    ] {
        for op in [OpKind::Bcast, OpKind::Reduce] {
            let case = CollectiveCase {
                machine: machine.clone(),
                nranks: 16,
                op,
                library,
                msg_bytes: 64 * 1024,
            };
            let plan = FaultPlan::lossy(13, 0.015).with_rto(Duration::from_micros(60));
            let res = run_once_faulted(&case, NoiseScope::AllRanks, 0.0, 1, plan);
            assert!(
                res.stats.drops_injected == 0 || res.stats.retransmits > 0,
                "{library:?} {op:?}: drops without retransmits"
            );
        }
    }
}

#[test]
fn faults_compose_with_noise() {
    // Loss + OS noise together: the two RNG streams are independent and
    // the composed run must still be deterministic and byte-correct.
    let data = payload(150_000);
    let run = || {
        let machine = profiles::minicluster(2, 2, 4);
        let nranks = 16;
        let placement = Placement::block_cpu(machine.shape, nranks);
        let tree = Arc::new(topology_aware_tree(&placement, TopoTreeConfig::default()));
        let spec = BcastSpec {
            tree,
            msg_bytes: data.len() as u64,
            cfg: AdaptConfig::default().with_seg_size(32 * 1024),
            data: Some(Bytes::from(data.clone())),
        };
        let noise = ClusterNoise::uniform(
            nranks,
            NoiseSpec {
                period: Duration::from_micros(300),
                max_duration: Duration::from_micros(150),
                law: adapt::noise::DurationLaw::Uniform,
            },
            MasterSeed(5),
        );
        let world = World::cpu(machine, nranks, noise);
        let plan = FaultPlan::lossy(21, 0.02).with_rto(Duration::from_micros(80));
        world.with_faults(plan).run(spec.programs())
    };
    let a = run();
    assert!(a.stats.retransmits > 0);
    let b = run();
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.per_rank_finish, b.per_rank_finish);
    assert_bytes(a, &data);
}

#[test]
fn faults_compose_with_observability() {
    // Recording must survive the reliability layer's edge cases — in
    // particular a retransmit whose timer fires after the message it
    // belongs to has completed (lost ack, delivered original). High
    // loss and a tight RTO make those races common.
    let data = payload(200_000);
    let (world, programs) = bcast_world(&data);
    let plan = FaultPlan::lossy(29, 0.05).with_rto(Duration::from_micros(40));
    let res = world
        .with_faults(plan)
        .with_recorder(Box::new(adapt::obs::MemRecorder::new()))
        .run(programs);
    assert!(res.stats.retransmits > 0);
    let obs = res.obs.as_ref().expect("recorded run carries obs data");
    let drops: u32 = obs.msgs.iter().map(|m| m.drops).sum();
    let rtx: u32 = obs.msgs.iter().map(|m| m.retransmits).sum();
    assert!(drops > 0, "per-message drop events must be recorded");
    assert_eq!(
        rtx as u64, res.stats.retransmits,
        "per-message retransmit events must match the world counter"
    );
    assert_bytes(res, &data);
}

#[test]
fn watchdog_diagnoses_a_guaranteed_stall() {
    // Rank 2 stalls for a simulated hour; a 1ms watchdog horizon must
    // surface a diagnosis naming it instead of running the stall out.
    let data = payload(100_000);
    let (world, programs) = bcast_world(&data);
    let plan = FaultPlan::lossy(1, 0.0).with_stall(
        2,
        Time::ZERO,
        Time::ZERO + Duration::from_millis(3_600_000),
    );
    let err = match world
        .with_faults(plan)
        .with_watchdog(Duration::from_millis(1))
        .try_run(programs)
    {
        Err(e) => e,
        Ok(_) => panic!("an hour-long stall must trip a 1ms watchdog"),
    };
    let diag = match err.as_ref() {
        adapt::mpi::RunError::Stalled(d) => d,
        other => panic!("a stall without kills must classify as Stalled: {other}"),
    };
    assert!(diag.watchdog_fired, "horizon breach, not a dry queue");
    assert!(diag.stuck.contains(&2), "rank 2 is the stalled rank: {err}");
    let text = err.to_string();
    assert!(
        text.contains("deadlock"),
        "diagnosis must lead with deadlock: {text}"
    );
    assert!(
        text.contains("stalled=true"),
        "diagnosis must flag the stall: {text}"
    );
}

/// Assert every *surviving* rank assembled exactly `data` (dead ranks
/// hold whatever partial state they had at the kill instant).
fn assert_bytes_survivors(res: adapt::mpi::RunResult, data: &[u8], dead: &[u32]) {
    assert!(res.audit.is_clean(), "{}", res.audit);
    assert_eq!(res.audit.failed_ranks, dead, "audit must name the dead");
    for (r, p) in res.programs.into_iter().enumerate() {
        if dead.contains(&(r as u32)) {
            continue;
        }
        let any: Box<dyn std::any::Any> = p;
        let b = any.downcast::<adapt::core::AdaptBcast>().unwrap();
        assert_eq!(
            b.assembled().unwrap(),
            data,
            "surviving rank {r} must still assemble the full broadcast"
        );
    }
}

/// The chaos workload's broadcast tree (for picking interior victims).
fn chaos_tree() -> Tree {
    let machine = profiles::minicluster(2, 2, 4);
    let placement = Placement::block_cpu(machine.shape, 16);
    topology_aware_tree(&placement, TopoTreeConfig::default())
}

#[test]
fn killed_interior_rank_is_survivable() {
    // Kill a rank that has children early in the broadcast, with an RTO
    // tight enough that the detector converges while the victim's parent
    // is still inside the operation: the tree is rebuilt around the hole,
    // the adopting parent resends from segment 0, and every survivor
    // assembles the full payload. (Detection converging only *after* the
    // adopter finished is the honest-failure case covered by
    // `killed_root_is_a_structured_failure_not_a_panic`.)
    let data = payload(200_000);
    let tree = chaos_tree();
    let victim = (1u32..16)
        .find(|&r| !tree.children(r).is_empty())
        .expect("the 16-rank topo tree has an interior non-root rank");
    let (world, programs) = bcast_world(&data);
    let plan = FaultPlan::lossy(1, 0.0)
        .with_kill(victim, t_us(5))
        .with_rto(Duration::from_micros(5));
    let res = world
        .with_faults(plan)
        .try_run(programs)
        .unwrap_or_else(|e| panic!("an interior kill must be survivable: {e}"));
    assert_eq!(res.stats.ranks_killed, 1);
    assert_eq!(res.stats.failures_detected, 1);
    assert_bytes_survivors(res, &data, &[victim]);
}

#[test]
fn killed_leaf_never_blocks_the_others() {
    let data = payload(150_000);
    let tree = chaos_tree();
    let victim = (1u32..16)
        .find(|&r| tree.children(r).is_empty())
        .expect("the tree has leaves");
    let (world, programs) = bcast_world(&data);
    let plan = FaultPlan::lossy(1, 0.0).with_kill(victim, t_us(20));
    let res = world
        .with_faults(plan)
        .try_run(programs)
        .unwrap_or_else(|e| panic!("a leaf kill must be survivable: {e}"));
    assert_bytes_survivors(res, &data, &[victim]);
}

#[test]
fn killed_root_is_a_structured_failure_not_a_panic() {
    // The data source dying is not survivable — the run must end with a
    // diagnosis naming rank 0, never a panic and never a hang.
    let data = payload(150_000);
    let (world, programs) = bcast_world(&data);
    let plan = FaultPlan::lossy(1, 0.0).with_kill(0, t_us(10));
    let err = match world
        .with_faults(plan)
        .with_watchdog(Duration::from_millis(50))
        .try_run(programs)
    {
        Err(e) => e,
        Ok(_) => panic!("a dead broadcast root cannot complete"),
    };
    let adapt::mpi::RunError::RanksFailed(diag) = err.as_ref() else {
        panic!("a kill-induced stall must classify as RanksFailed: {err}");
    };
    assert_eq!(diag.failed, vec![0], "the diagnosis must name the root");
    assert!(
        !diag.stuck.is_empty(),
        "survivors waiting on the dead root are stuck"
    );
    let text = err.to_string();
    assert!(text.contains("rank failure"), "{text}");
}

#[test]
fn killed_node_is_survivable_when_the_root_lives() {
    // Node 1 (ranks 8..16 on the 2x2x4 minicluster) dies wholesale; the
    // root's node survives and completes among its own eight ranks.
    let data = payload(200_000);
    let (world, programs) = bcast_world(&data);
    let plan = FaultPlan::lossy(1, 0.0).with_node_kill(1, t_us(30));
    let res = world
        .with_faults(plan)
        .try_run(programs)
        .unwrap_or_else(|e| panic!("losing the non-root node must be survivable: {e}"));
    let dead: Vec<u32> = (8..16).collect();
    assert_eq!(res.stats.ranks_killed, 8);
    assert_eq!(res.stats.failures_detected, 8);
    assert_bytes_survivors(res, &data, &dead);
}

#[test]
fn kill_recovery_is_byte_identical_across_thread_counts() {
    // The failure detector, revoke snapshot, and recovery resends all ride
    // the deterministic event queue: a kill schedule must produce the same
    // per-rank finish times and counters at any shard parallelism.
    let data = payload(200_000);
    let tree = chaos_tree();
    let victim = (1u32..16).find(|&r| !tree.children(r).is_empty()).unwrap();
    let run = |threads: usize| {
        let (world, programs) = bcast_world(&data);
        let plan = FaultPlan::lossy(3, 0.01)
            .with_kill(victim, t_us(5))
            .with_rto(Duration::from_micros(5));
        world
            .with_threads(threads)
            .with_faults(plan)
            .try_run(programs)
            .unwrap_or_else(|e| panic!("{threads} threads: {e}"))
    };
    let base = run(1);
    for threads in [2, 4, 8] {
        let res = run(threads);
        assert_eq!(
            base.per_rank_finish, res.per_rank_finish,
            "{threads} threads must reproduce single-thread finish times"
        );
        assert_eq!(base.makespan, res.makespan);
        assert_eq!(base.stats.retransmits, res.stats.retransmits);
        assert_eq!(base.stats.ranks_killed, res.stats.ranks_killed);
        assert_eq!(base.stats.failures_detected, res.stats.failures_detected);
    }
    assert_bytes_survivors(base, &data, &[victim]);
}

#[test]
fn detection_latency_tracks_the_rto() {
    // The heartbeat detector declares a rank dead after rto x
    // (max_retries + 1) of silence, so the recovery makespan is bounded
    // below by the kill instant plus that delay — and shrinking the RTO
    // shrinks time-to-recovery (the EXPERIMENTS detection-latency study).
    let data = payload(150_000);
    let tree = chaos_tree();
    let victim = (1u32..16).find(|&r| !tree.children(r).is_empty()).unwrap();
    let kill_at = t_us(5);
    let run = |rto_us: u64| {
        let (world, programs) = bcast_world(&data);
        let plan = FaultPlan::lossy(1, 0.0)
            .with_kill(victim, kill_at)
            .with_rto(Duration::from_micros(rto_us));
        world
            .with_faults(plan)
            .try_run(programs)
            .unwrap_or_else(|e| panic!("rto={rto_us}us: {e}"))
    };
    let slow = run(8);
    let fast = run(3);
    // Default retries = 16, so detection lands at kill + 17 x rto.
    let floor = |rto_us: u64| kill_at + Duration::from_micros(17 * rto_us);
    assert!(
        slow.makespan >= floor(8).saturating_since(Time::ZERO),
        "recovery cannot beat the detector: makespan={}",
        slow.makespan
    );
    assert!(
        fast.makespan < slow.makespan,
        "a 4x tighter RTO must recover sooner: fast={} slow={}",
        fast.makespan,
        slow.makespan
    );
    assert_bytes_survivors(fast, &data, &[victim]);
}

#[test]
fn kill_after_completion_is_harmless() {
    // A kill instant past the fault-free makespan: the rank already
    // finished, so the late death changes nothing about the data and the
    // audit stays clean (no failed bytes — everything was consumed).
    let data = payload(100_000);
    let (world, programs) = bcast_world(&data);
    let clean = world.run(programs);
    let (world, programs) = bcast_world(&data);
    let late = Time::ZERO + Duration::from_nanos(clean.makespan.as_nanos() * 3);
    let plan = FaultPlan::lossy(1, 0.0).with_kill(5, late);
    let res = world
        .with_faults(plan)
        .try_run(programs)
        .unwrap_or_else(|e| panic!("a post-completion kill must be harmless: {e}"));
    assert_eq!(res.audit.failed_bytes, 0, "{}", res.audit);
    assert_eq!(res.per_rank_finish, clean.per_rank_finish);
    assert_bytes(res, &data);
}

#[test]
fn kills_compose_with_loss_and_stalls() {
    // The full gauntlet: packet loss, a transient stall, and a permanent
    // interior death in one schedule. Survivors must still converge.
    let data = payload(150_000);
    let tree = chaos_tree();
    let victim = (1u32..16).rfind(|&r| !tree.children(r).is_empty()).unwrap();
    let stalled = (1u32..16).find(|&r| r != victim).unwrap();
    let (world, programs) = bcast_world(&data);
    let plan = FaultPlan::lossy(11, 0.01)
        .with_stall(stalled, t_us(5), t_us(60))
        .with_kill(victim, t_us(8))
        .with_rto(Duration::from_micros(5));
    let res = world
        .with_faults(plan)
        .try_run(programs)
        .unwrap_or_else(|e| panic!("composed schedule must be survivable: {e}"));
    assert_eq!(res.stats.ranks_killed, 1);
    assert_bytes_survivors(res, &data, &[victim]);
}

#[test]
fn watchdog_stays_silent_on_survivable_schedules() {
    // A generous horizon must never fire on a run that recovers on its
    // own, even under heavy loss.
    let data = payload(150_000);
    let (world, programs) = bcast_world(&data);
    let plan = FaultPlan::lossy(17, 0.04).with_rto(Duration::from_micros(60));
    let res = match world
        .with_faults(plan)
        .with_watchdog(Duration::from_millis(1000))
        .try_run(programs)
    {
        Ok(r) => r,
        Err(d) => panic!("a survivable schedule must complete under a generous watchdog: {d}"),
    };
    assert!(res.stats.retransmits > 0);
    assert_bytes(res, &data);
}
