//! Chaos suite: seeded randomized fault schedules against the reliability
//! layer.
//!
//! The contract under test is the tentpole claim of the fault-injection
//! work: **any survivable fault schedule changes timing, never data**.
//! Every test here runs a real collective carrying real payload bytes
//! under injected loss, link-down windows, degradation windows, or rank
//! stalls, and asserts
//!
//! 1. byte-identical results to a fault-free run (assembled broadcast
//!    buffers, numerically exact reductions),
//! 2. a clean end-of-run audit (the faulted byte ledger balances:
//!    `injected == delivered + dropped`, exactly-once delivery),
//! 3. determinism — the same seed reproduces the same trace, stats, and
//!    per-rank finish times bit-for-bit,
//! 4. an inert plan is indistinguishable from no plan at all,
//! 5. a guaranteed stall trips the watchdog with a per-rank diagnosis
//!    instead of hanging.

use adapt::collectives::{run_once_faulted, CollectiveCase, Library, NoiseScope, OpKind};
use adapt::prelude::*;
use bytes::Bytes;
use std::sync::Arc;

/// Broadcast payload with a recognizable, position-dependent pattern.
fn payload(len: usize) -> Vec<u8> {
    (0..len as u32).map(|i| (i % 249) as u8).collect()
}

/// Absolute simulated time `us` microseconds after start.
fn t_us(us: u64) -> Time {
    Time::ZERO + Duration::from_micros(us)
}

/// Build the standard chaos workload: 16-rank ADAPT broadcast of real
/// bytes on the two-node minicluster.
fn bcast_world(data: &[u8]) -> (World, Vec<Box<dyn RankProgram>>) {
    let machine = profiles::minicluster(2, 2, 4);
    let nranks = 16;
    let placement = Placement::block_cpu(machine.shape, nranks);
    let tree = Arc::new(topology_aware_tree(&placement, TopoTreeConfig::default()));
    let spec = BcastSpec {
        tree,
        msg_bytes: data.len() as u64,
        cfg: AdaptConfig::default().with_seg_size(32 * 1024),
        data: Some(Bytes::from(data.to_vec())),
    };
    let world = World::cpu(machine, nranks, ClusterNoise::silent(nranks));
    (world, spec.programs())
}

/// Assert every rank assembled exactly `data`.
fn assert_bytes(res: adapt::mpi::RunResult, data: &[u8]) {
    assert!(res.audit.is_clean(), "{}", res.audit);
    for (r, p) in res.programs.into_iter().enumerate() {
        let any: Box<dyn std::any::Any> = p;
        let b = any.downcast::<adapt::core::AdaptBcast>().unwrap();
        assert_eq!(b.assembled().unwrap(), data, "rank {r}");
    }
}

#[test]
fn lossy_bcast_is_byte_identical_and_recovers() {
    let data = payload(300_000);
    let (world, programs) = bcast_world(&data);
    let plan = FaultPlan::lossy(7, 0.02).with_rto(Duration::from_micros(60));
    let res = world.with_faults(plan).run(programs);
    assert!(res.stats.drops_injected > 0, "2% loss must drop something");
    assert!(res.stats.retransmits > 0, "drops must trigger retransmits");
    assert!(res.stats.acks > 0, "delivered transfers must be acked");
    assert_bytes(res, &data);
}

#[test]
fn lossy_reduce_is_numerically_exact() {
    let machine = profiles::minicluster(2, 2, 4);
    let nranks = 16u32;
    let elems = 4000usize;
    let contributions: Arc<Vec<Bytes>> = Arc::new(
        (0..nranks)
            .map(|r| {
                let v: Vec<f64> = (0..elems).map(|i| ((r as usize + i) % 37) as f64).collect();
                Bytes::from(adapt::mpi::f64_to_bytes(&v))
            })
            .collect(),
    );
    let expected: Vec<f64> = (0..elems)
        .map(|i| (0..nranks).map(|r| ((r as usize + i) % 37) as f64).sum())
        .collect();
    let placement = Placement::block_cpu(machine.shape, nranks);
    let tree = Arc::new(topology_aware_tree(&placement, TopoTreeConfig::default()));
    let spec = ReduceSpec {
        tree,
        msg_bytes: (elems * 8) as u64,
        cfg: AdaptConfig::default().with_seg_size(8 * 1024),
        data: ReduceData::Real {
            op: adapt::mpi::ReduceOp::Sum,
            dtype: adapt::mpi::DType::F64,
            contributions,
        },
        exec: ReduceExec::Cpu,
    };
    let world = World::cpu(machine, nranks, ClusterNoise::silent(nranks));
    let plan = FaultPlan::lossy(11, 0.03).with_rto(Duration::from_micros(60));
    let res = world.with_faults(plan).run(spec.programs());
    assert!(res.audit.is_clean(), "{}", res.audit);
    assert!(
        res.stats.retransmits > 0,
        "3% loss must trigger retransmits"
    );
    let root: Box<dyn std::any::Any> = res.programs.into_iter().next().unwrap();
    let root = root.downcast::<adapt::core::AdaptReduce>().unwrap();
    assert_eq!(
        adapt::mpi::bytes_to_f64(&root.result().unwrap()),
        expected,
        "loss must never corrupt a reduction"
    );
}

#[test]
fn same_seed_reproduces_the_same_faulted_run() {
    let data = payload(200_000);
    let run = || {
        let (world, programs) = bcast_world(&data);
        let plan = FaultPlan::lossy(42, 0.02).with_rto(Duration::from_micros(80));
        world.with_faults(plan).run(programs)
    };
    let a = run();
    let b = run();
    assert!(a.stats.drops_injected > 0);
    assert_eq!(a.stats, b.stats, "same seed must reproduce every counter");
    assert_eq!(
        a.per_rank_finish, b.per_rank_finish,
        "same seed must reproduce per-rank completion times exactly"
    );
    assert_eq!(a.makespan, b.makespan);
}

#[test]
fn inert_plan_is_indistinguishable_from_no_plan() {
    let data = payload(150_000);
    let (world, programs) = bcast_world(&data);
    let baseline = world.run(programs);
    let (world, programs) = bcast_world(&data);
    let plan = FaultPlan::lossy(9, 0.0); // zero loss, no windows: inert
    assert!(plan.is_inert());
    let faulted = world.with_faults(plan).run(programs);
    assert_eq!(
        baseline.stats, faulted.stats,
        "inert plan must attach nothing"
    );
    assert_eq!(baseline.per_rank_finish, faulted.per_rank_finish);
}

#[test]
fn faults_change_timing_never_data() {
    // The makespan under loss must not beat the fault-free run: drops
    // only ever cost time (drained bandwidth + RTO waits), never save it.
    let data = payload(200_000);
    let (world, programs) = bcast_world(&data);
    let clean = world.run(programs);
    let (world, programs) = bcast_world(&data);
    let plan = FaultPlan::lossy(3, 0.05).with_rto(Duration::from_micros(60));
    let faulted = world.with_faults(plan).run(programs);
    assert!(faulted.stats.retransmits > 0);
    assert!(
        faulted.makespan >= clean.makespan,
        "loss cannot speed a run up: clean={} faulted={}",
        clean.makespan,
        faulted.makespan
    );
    assert_bytes(faulted, &data);
}

#[test]
fn down_window_is_survivable() {
    // Take the whole fabric down for a window mid-run: every flow
    // launched inside it is dropped, and the reliability layer must
    // carry the collective across the outage.
    let data = payload(200_000);
    let (world, programs) = bcast_world(&data);
    let plan = FaultPlan::lossy(5, 0.0)
        .with_down(t_us(40), t_us(160))
        .with_rto(Duration::from_micros(60));
    let res = world.with_faults(plan).run(programs);
    assert!(
        res.stats.drops_injected > 0,
        "the outage must hit in-window launches"
    );
    assert!(res.stats.retransmits > 0);
    assert_bytes(res, &data);
}

#[test]
fn degrade_window_slows_but_never_corrupts() {
    let data = payload(200_000);
    let (world, programs) = bcast_world(&data);
    let clean = world.run(programs);
    let (world, programs) = bcast_world(&data);
    // 5% capacity, 4x latency across a window covering the whole run.
    let plan = FaultPlan::lossy(5, 0.0).with_degrade(
        0.05,
        4.0,
        Time::ZERO,
        Time::ZERO + Duration::from_millis(100),
    );
    let res = world.with_faults(plan).run(programs);
    assert!(
        res.makespan > clean.makespan,
        "a 20x-slower fabric must inflate the makespan: clean={} degraded={}",
        clean.makespan,
        res.makespan
    );
    assert_bytes(res, &data);
}

#[test]
fn stalled_rank_delays_but_never_corrupts() {
    let data = payload(150_000);
    let (world, programs) = bcast_world(&data);
    let clean = world.run(programs);
    // Stall a mid-tree rank well past the fault-free makespan: the whole
    // subtree must wait for it and still assemble the right bytes.
    let (world, programs) = bcast_world(&data);
    let stall_end = clean.makespan.as_nanos() * 2;
    let stall_end = Time::ZERO + Duration::from_nanos(stall_end);
    let plan = FaultPlan::lossy(5, 0.0).with_stall(3, Time::ZERO, stall_end);
    let res = world.with_faults(plan).run(programs);
    assert!(
        res.per_rank_finish[3] >= stall_end,
        "rank 3 cannot finish before its stall window ends"
    );
    assert!(res.makespan > clean.makespan);
    assert_bytes(res, &data);
}

#[test]
fn randomized_schedules_are_all_survivable() {
    // Seeded pseudo-random fault schedules: loss rate, an outage window,
    // and a rank stall all derived from the seed. Every schedule must be
    // survived byte-correct with a clean audit.
    let data = payload(120_000);
    for seed in 0..6u64 {
        let loss = 0.005 + 0.008 * (seed as f64);
        let down_start = 30 + 17 * seed;
        let stall_rank = (seed * 5 % 16) as u32;
        let plan = FaultPlan::lossy(seed, loss)
            .with_down(t_us(down_start), t_us(down_start + 40))
            .with_stall(stall_rank, t_us(10 * seed), t_us(10 * seed + 50))
            .with_rto(Duration::from_micros(80));
        let (world, programs) = bcast_world(&data);
        let res = world.with_faults(plan).run(programs);
        assert!(
            res.stats.drops_injected > 0,
            "seed {seed}: outage must drop flows"
        );
        assert_bytes(res, &data);
    }
}

#[test]
fn chaos_matrix_every_library_survives_loss() {
    // Every comparator library, broadcast and reduce, under seeded loss:
    // the reliability layer sits below the protocol layer, so recovery
    // must be algorithm-agnostic. `run_once_faulted` asserts the audit.
    let machine = profiles::minicluster(2, 2, 4);
    for library in [
        Library::OmpiAdapt,
        Library::OmpiDefault,
        Library::OmpiBlocking,
        Library::IntelMpi,
    ] {
        for op in [OpKind::Bcast, OpKind::Reduce] {
            let case = CollectiveCase {
                machine: machine.clone(),
                nranks: 16,
                op,
                library,
                msg_bytes: 64 * 1024,
            };
            let plan = FaultPlan::lossy(13, 0.015).with_rto(Duration::from_micros(60));
            let res = run_once_faulted(&case, NoiseScope::AllRanks, 0.0, 1, plan);
            assert!(
                res.stats.drops_injected == 0 || res.stats.retransmits > 0,
                "{library:?} {op:?}: drops without retransmits"
            );
        }
    }
}

#[test]
fn faults_compose_with_noise() {
    // Loss + OS noise together: the two RNG streams are independent and
    // the composed run must still be deterministic and byte-correct.
    let data = payload(150_000);
    let run = || {
        let machine = profiles::minicluster(2, 2, 4);
        let nranks = 16;
        let placement = Placement::block_cpu(machine.shape, nranks);
        let tree = Arc::new(topology_aware_tree(&placement, TopoTreeConfig::default()));
        let spec = BcastSpec {
            tree,
            msg_bytes: data.len() as u64,
            cfg: AdaptConfig::default().with_seg_size(32 * 1024),
            data: Some(Bytes::from(data.clone())),
        };
        let noise = ClusterNoise::uniform(
            nranks,
            NoiseSpec {
                period: Duration::from_micros(300),
                max_duration: Duration::from_micros(150),
                law: adapt::noise::DurationLaw::Uniform,
            },
            MasterSeed(5),
        );
        let world = World::cpu(machine, nranks, noise);
        let plan = FaultPlan::lossy(21, 0.02).with_rto(Duration::from_micros(80));
        world.with_faults(plan).run(spec.programs())
    };
    let a = run();
    assert!(a.stats.retransmits > 0);
    let b = run();
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.per_rank_finish, b.per_rank_finish);
    assert_bytes(a, &data);
}

#[test]
fn faults_compose_with_observability() {
    // Recording must survive the reliability layer's edge cases — in
    // particular a retransmit whose timer fires after the message it
    // belongs to has completed (lost ack, delivered original). High
    // loss and a tight RTO make those races common.
    let data = payload(200_000);
    let (world, programs) = bcast_world(&data);
    let plan = FaultPlan::lossy(29, 0.05).with_rto(Duration::from_micros(40));
    let res = world
        .with_faults(plan)
        .with_recorder(Box::new(adapt::obs::MemRecorder::new()))
        .run(programs);
    assert!(res.stats.retransmits > 0);
    let obs = res.obs.as_ref().expect("recorded run carries obs data");
    let drops: u32 = obs.msgs.iter().map(|m| m.drops).sum();
    let rtx: u32 = obs.msgs.iter().map(|m| m.retransmits).sum();
    assert!(drops > 0, "per-message drop events must be recorded");
    assert_eq!(
        rtx as u64, res.stats.retransmits,
        "per-message retransmit events must match the world counter"
    );
    assert_bytes(res, &data);
}

#[test]
fn watchdog_diagnoses_a_guaranteed_stall() {
    // Rank 2 stalls for a simulated hour; a 1ms watchdog horizon must
    // surface a diagnosis naming it instead of running the stall out.
    let data = payload(100_000);
    let (world, programs) = bcast_world(&data);
    let plan = FaultPlan::lossy(1, 0.0).with_stall(
        2,
        Time::ZERO,
        Time::ZERO + Duration::from_millis(3_600_000),
    );
    let err = match world
        .with_faults(plan)
        .with_watchdog(Duration::from_millis(1))
        .try_run(programs)
    {
        Err(e) => e,
        Ok(_) => panic!("an hour-long stall must trip a 1ms watchdog"),
    };
    assert!(err.watchdog_fired, "horizon breach, not a dry queue");
    assert!(err.stuck.contains(&2), "rank 2 is the stalled rank: {err}");
    let text = err.to_string();
    assert!(
        text.contains("deadlock"),
        "diagnosis must lead with deadlock: {text}"
    );
    assert!(
        text.contains("stalled=true"),
        "diagnosis must flag the stall: {text}"
    );
}

#[test]
fn watchdog_stays_silent_on_survivable_schedules() {
    // A generous horizon must never fire on a run that recovers on its
    // own, even under heavy loss.
    let data = payload(150_000);
    let (world, programs) = bcast_world(&data);
    let plan = FaultPlan::lossy(17, 0.04).with_rto(Duration::from_micros(60));
    let res = match world
        .with_faults(plan)
        .with_watchdog(Duration::from_millis(1000))
        .try_run(programs)
    {
        Ok(r) => r,
        Err(d) => panic!("a survivable schedule must complete under a generous watchdog: {d}"),
    };
    assert!(res.stats.retransmits > 0);
    assert_bytes(res, &data);
}
