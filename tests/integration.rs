//! Cross-crate integration tests through the public `adapt` facade.

use adapt::apps::{run_asp, verify_distributed_fw, AspConfig};
use adapt::collectives::{run_once_scoped, NoiseScope};
use adapt::noise::DurationLaw;
use adapt::prelude::*;
use bytes::Bytes;
use std::sync::Arc;

#[test]
fn facade_broadcast_delivers_real_data() {
    let machine = profiles::minicluster(2, 2, 4);
    let nranks = 16;
    let data: Vec<u8> = (0..300_000u32).map(|i| (i % 249) as u8).collect();
    let placement = Placement::block_cpu(machine.shape, nranks);
    let tree = Arc::new(topology_aware_tree(&placement, TopoTreeConfig::default()));
    let spec = BcastSpec {
        tree,
        msg_bytes: data.len() as u64,
        cfg: AdaptConfig::default().with_seg_size(32 * 1024),
        data: Some(Bytes::from(data.clone())),
    };
    let world = World::cpu(machine, nranks, ClusterNoise::silent(nranks));
    let res = world.run(spec.programs());
    assert!(res.audit.is_clean(), "{}", res.audit);
    for (r, p) in res.programs.into_iter().enumerate() {
        let any: Box<dyn std::any::Any> = p;
        let b = any.downcast::<adapt::core::AdaptBcast>().unwrap();
        assert_eq!(b.assembled().unwrap(), data, "rank {r}");
    }
}

#[test]
fn facade_reduce_is_numerically_exact_under_noise() {
    let machine = profiles::minicluster(2, 2, 4);
    let nranks = 16u32;
    let elems = 5000usize;
    let contributions: Arc<Vec<Bytes>> = Arc::new(
        (0..nranks)
            .map(|r| {
                let v: Vec<f64> = (0..elems).map(|i| ((r as usize + i) % 37) as f64).collect();
                Bytes::from(adapt::mpi::f64_to_bytes(&v))
            })
            .collect(),
    );
    let expected: Vec<f64> = (0..elems)
        .map(|i| (0..nranks).map(|r| ((r as usize + i) % 37) as f64).sum())
        .collect();
    let placement = Placement::block_cpu(machine.shape, nranks);
    let tree = Arc::new(topology_aware_tree(&placement, TopoTreeConfig::default()));
    let spec = ReduceSpec {
        tree,
        msg_bytes: (elems * 8) as u64,
        cfg: AdaptConfig::default().with_seg_size(8 * 1024),
        data: ReduceData::Real {
            op: adapt::mpi::ReduceOp::Sum,
            dtype: adapt::mpi::DType::F64,
            contributions,
        },
        exec: ReduceExec::Cpu,
    };
    let noise = ClusterNoise::uniform(
        nranks,
        NoiseSpec {
            period: Duration::from_micros(300),
            max_duration: Duration::from_micros(200),
            law: DurationLaw::Uniform,
        },
        MasterSeed(5),
    );
    let world = World::cpu(machine, nranks, noise);
    let res = world.run(spec.programs());
    assert!(res.audit.is_clean(), "{}", res.audit);
    let root: Box<dyn std::any::Any> = res.programs.into_iter().next().unwrap();
    let root = root.downcast::<adapt::core::AdaptReduce>().unwrap();
    assert_eq!(
        adapt::mpi::bytes_to_f64(&root.result().unwrap()),
        expected,
        "noise must never corrupt data"
    );
}

#[test]
fn noise_resistance_ordering_holds_end_to_end() {
    // The paper's central claim, end to end at reduced scale: under
    // noise the event-driven design slows down less than the blocking
    // design. Measured IMB-style (back-to-back iterations in one world),
    // because blocking amplifies noise by carrying skew from one iteration
    // into the next. All ranks are noisy here: at 32 ranks the paper's
    // 10 Hz per-node windows would rarely intersect a short run at all.
    let machine = profiles::minicluster(4, 2, 4);
    let nranks = 32;
    let slowdown = |library: Library| {
        let mk = |noise: f64| {
            let tr = adapt::collectives::run_trial(&adapt::collectives::Trial {
                case: CollectiveCase {
                    machine: machine.clone(),
                    nranks,
                    op: OpKind::Bcast,
                    library,
                    msg_bytes: 2 << 20,
                },
                noise_percent: noise,
                scope: NoiseScope::AllRanks,
                iterations: 16,
                repeats: 3,
                seed: 4,
            });
            assert!(tr.audit.is_clean(), "{}", tr.audit);
            tr.mean_us
        };
        mk(10.0) / mk(0.0)
    };
    let adapt = slowdown(Library::OmpiAdapt);
    let blocking = slowdown(Library::Mvapich);
    assert!(
        adapt < blocking,
        "adapt {adapt:.2}x must absorb noise better than blocking {blocking:.2}x"
    );
}

#[test]
fn gpu_pipeline_end_to_end() {
    // The full §4 story on a small GPU machine: adapt (staging + GPU
    // reduce) beats the CPU-fold baseline on both operations.
    let machine = profiles::psg(2);
    let nranks = machine.gpu_job_size();
    let time = |library: GpuLibrary, op: OpKind| {
        run_gpu_once(&GpuCase {
            machine: machine.clone(),
            nranks,
            op,
            library,
            msg_bytes: 16 << 20,
        })
        .0
    };
    assert!(
        time(GpuLibrary::OmpiAdapt, OpKind::Bcast) < time(GpuLibrary::OmpiDefault, OpKind::Bcast)
    );
    let adapt_reduce = time(GpuLibrary::OmpiAdapt, OpKind::Reduce);
    let mvapich_reduce = time(GpuLibrary::Mvapich, OpKind::Reduce);
    assert!(
        adapt_reduce * 2.0 < mvapich_reduce,
        "GPU-offloaded reduce must win big: {adapt_reduce:.0}us vs {mvapich_reduce:.0}us"
    );
}

#[test]
fn asp_application_end_to_end() {
    let machine = profiles::minicluster(2, 2, 4);
    let r = run_asp(&AspConfig {
        machine,
        nranks: 16,
        library: Library::OmpiAdapt,
        row_bytes: 512 * 1024,
        iterations: 8,
        compute_per_iter: Duration::from_micros(100),
    });
    assert!(r.total_s > 0.0);
    assert!(r.comm_fraction() > 0.0 && r.comm_fraction() < 1.0);
    // And the numerics of the distributed algorithm are exact.
    assert_eq!(verify_distributed_fw(6, 20, 11), 0.0);
}

#[test]
fn async_progress_overlaps_collective_with_compute() {
    // Paper §7 future work: non-blocking collectives with asynchronous
    // progress. Every rank starts a 2 ms local compute AND participates in
    // an ADAPT broadcast. With a progress thread the two overlap (makespan
    // ≈ max); without, intermediate ranks stop forwarding while they
    // compute, and the pipeline pays the compute on top.
    use adapt::mpi::Op;

    struct Overlap {
        bcast: adapt::core::AdaptBcast,
    }
    const COMPUTE: Token = Token(u64::MAX - 3);
    impl RankProgram for Overlap {
        fn on_start(&mut self, ctx: &mut dyn ProgramCtx) {
            ctx.post(Op::Compute {
                work: Duration::from_millis(2),
                token: COMPUTE,
            });
            self.bcast.on_start(ctx);
        }
        fn on_completion(&mut self, ctx: &mut dyn ProgramCtx, c: Completion) {
            if c.token() == COMPUTE {
                return; // app compute finished; collective runs on its own
            }
            self.bcast.on_completion(ctx, c);
        }
    }

    let machine = profiles::minicluster(4, 2, 4);
    let nranks = 32;
    let run = |async_progress: bool| {
        let placement = Placement::block_cpu(machine.shape, nranks);
        let tree = Arc::new(topology_aware_tree(&placement, TopoTreeConfig::default()));
        let spec = BcastSpec {
            tree,
            msg_bytes: 4 << 20,
            cfg: AdaptConfig::default(),
            data: None,
        };
        let programs: Vec<Box<dyn RankProgram>> = (0..nranks)
            .map(|r| {
                Box::new(Overlap {
                    bcast: adapt::core::AdaptBcast::new(&spec, r),
                }) as Box<dyn RankProgram>
            })
            .collect();
        let world = World::cpu(machine.clone(), nranks, ClusterNoise::silent(nranks));
        let world = if async_progress {
            world.enable_async_progress()
        } else {
            world
        };
        // The rank "finishes" when the bcast does; the compute may still be
        // running — completion of the collective is what we time, like an
        // MPI_Ibcast + MPI_Wait around local work.
        let res = world.run(programs);
        assert!(res.audit.is_clean(), "{}", res.audit);
        res.makespan.as_millis_f64()
    };

    let with_progress = run(true);
    let without = run(false);
    assert!(
        with_progress < 2.6,
        "async progress must overlap: {with_progress:.2} ms"
    );
    assert!(
        without > with_progress * 1.5,
        "without a progress thread the compute serializes: {without:.2} vs {with_progress:.2} ms"
    );
}

#[test]
fn full_stack_determinism() {
    let run = || {
        let case = CollectiveCase {
            machine: profiles::minicluster(3, 2, 4),
            nranks: 24,
            op: OpKind::Reduce,
            library: Library::OmpiAdapt,
            msg_bytes: 2 << 20,
        };
        run_once_scoped(&case, NoiseScope::AllRanks, 10.0, 77).0
    };
    assert_eq!(run(), run());
}

#[test]
fn audit_report_accounts_for_every_byte_and_event() {
    // The invariant audit layer end to end: run an ADAPT broadcast with
    // real data through the facade and check not only that the report is
    // clean but that its counters line up with the world's own statistics
    // and with each other.
    let machine = profiles::minicluster(2, 2, 4);
    let nranks = 16;
    let placement = Placement::block_cpu(machine.shape, nranks);
    let tree = Arc::new(topology_aware_tree(&placement, TopoTreeConfig::default()));
    let spec = BcastSpec {
        tree,
        msg_bytes: 1 << 20,
        cfg: AdaptConfig::default().with_seg_size(16 * 1024),
        data: None,
    };
    let world = World::cpu(machine, nranks, ClusterNoise::silent(nranks));
    let res = world.run(spec.programs());
    let audit = &res.audit;
    assert!(audit.is_clean(), "{audit}");
    // Every message the runtime counted is a posted send in the audit.
    assert_eq!(audit.total_sends_posted(), res.stats.messages);
    // Conservation, spelled out: what the senders posted is what the
    // receivers completed, and the network agrees (copies included).
    assert_eq!(audit.send_posted_bytes, audit.recv_completed_bytes);
    assert_eq!(
        audit.net_delivered_bytes,
        audit.send_posted_bytes + audit.copy_posted_bytes
    );
    assert_eq!(audit.net_delivered_bytes, res.stats.delivered_bytes);
    // Receive bookkeeping closes: every posted receive either completed
    // or is reported as an (legitimate, M > N style) leftover.
    let posted: u64 = audit.per_rank.iter().map(|r| r.recvs_posted).sum();
    assert_eq!(
        posted,
        audit.total_recvs_completed() + audit.leftover_posted_recvs
    );
    // The event queue's self-check ran and found the heap consistent.
    assert!(audit.queue.is_consistent(), "{:?}", audit.queue);
    assert_eq!(audit.queue.causality_violations, 0);
}

#[test]
fn trees_share_no_state_across_runs() {
    // Two sequential worlds over the same spec give identical results
    // (no hidden global state anywhere in the stack).
    let machine = profiles::minicluster(2, 1, 4);
    let mk = || {
        let case = CollectiveCase {
            machine: machine.clone(),
            nranks: 8,
            op: OpKind::Bcast,
            library: Library::OmpiDefaultTopo,
            msg_bytes: 1 << 20,
        };
        adapt::collectives::run_once(&case, 0.0, 3).0
    };
    let a = mk();
    let b = mk();
    assert_eq!(a, b);
}
