//! Seeded chaos soak: randomized fault schedules — including permanent
//! rank and node kills — against every comparator library, at every
//! shard parallelism.
//!
//! The contract is the robustness tentpole's acceptance bar:
//!
//! 1. **Never panic, never hang.** Every schedule either completes with
//!    a clean audit (dead ranks' bytes accounted through the failed
//!    columns, everything between live ranks delivered exactly once) or
//!    returns a structured [`RunError`](adapt::mpi::RunError) naming the
//!    failed set and the stuck survivors.
//! 2. **Byte-identical across thread counts.** The failure detector,
//!    revoke snapshot, and recovery resends all ride the deterministic
//!    event queue, so 1, 2, 4, and 8 worker threads must produce the
//!    same outcome bit-for-bit — same per-rank finish times on success,
//!    same diagnosis on failure.
//!
//! The schedule generator is a hand-rolled splitmix64 so the suite has
//! no dev-dependencies; every case prints its seed on failure and is
//! reproducible from it.

use adapt::collectives::{try_run_once_faulted, CollectiveCase, Library, NoiseScope, OpKind};
use adapt::prelude::*;

/// splitmix64: tiny, well-mixed, good enough to derive schedule knobs.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn unit_f64(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

fn t_us(us: u64) -> Time {
    Time::ZERO + Duration::from_micros(us)
}

/// Derive a randomized fault plan from one seed. Roughly half the plans
/// include a permanent kill (rank or whole node); the rest mix loss,
/// outage windows, and stalls that the reliability layer must absorb.
fn random_plan(seed: u64, nranks: u32) -> FaultPlan {
    let mut s = seed.wrapping_mul(0x5851_f42d_4c95_7f2d) ^ 0xda3e_39cb_94b9_5bdb;
    let loss = if unit_f64(&mut s) < 0.6 {
        0.002 + 0.02 * unit_f64(&mut s)
    } else {
        0.0
    };
    let mut plan =
        FaultPlan::lossy(seed, loss).with_rto(Duration::from_micros(20 + splitmix64(&mut s) % 60));
    if unit_f64(&mut s) < 0.4 {
        let start = 20 + splitmix64(&mut s) % 120;
        plan = plan.with_down(t_us(start), t_us(start + 10 + splitmix64(&mut s) % 50));
    }
    if unit_f64(&mut s) < 0.4 {
        let rank = (splitmix64(&mut s) % nranks as u64) as u32;
        let start = splitmix64(&mut s) % 80;
        plan = plan.with_stall(
            rank,
            t_us(start),
            t_us(start + 20 + splitmix64(&mut s) % 80),
        );
    }
    let roll = unit_f64(&mut s);
    if roll < 0.35 {
        let rank = (splitmix64(&mut s) % nranks as u64) as u32;
        plan = plan.with_kill(rank, t_us(splitmix64(&mut s) % 400));
    } else if roll < 0.5 {
        // Node kill: the 2x2x4 minicluster has two 8-rank nodes.
        plan = plan.with_node_kill(
            (splitmix64(&mut s) % 2) as u32,
            t_us(splitmix64(&mut s) % 400),
        );
    }
    plan
}

/// One schedule's outcome, flattened for cross-thread comparison.
#[derive(Debug, PartialEq)]
enum Outcome {
    /// Completed: clean audit (asserted inside the runner), finish times.
    Done {
        makespan: Duration,
        per_rank_finish: Vec<Time>,
        ranks_killed: u64,
        failures_detected: u64,
        retransmits: u64,
    },
    /// Structured failure: the full rendered diagnosis.
    Failed(String),
}

fn run_case(case: &CollectiveCase, plan: FaultPlan, threads: usize) -> Outcome {
    match try_run_once_faulted(case, NoiseScope::AllRanks, 0.0, 1, plan, threads) {
        Ok(res) => Outcome::Done {
            makespan: res.makespan,
            per_rank_finish: res.per_rank_finish,
            ranks_killed: res.stats.ranks_killed,
            failures_detected: res.stats.failures_detected,
            retransmits: res.stats.retransmits,
        },
        Err(e) => Outcome::Failed(e.to_string()),
    }
}

#[test]
fn soak_every_library_never_panics_under_random_schedules() {
    // Every library x both ops x randomized schedules with kills: the run
    // must end in a clean completion or a structured error. The runner
    // asserts the audit on every completion, so a schedule that corrupts
    // the ledger fails loudly here with its seed.
    let machine = profiles::minicluster(2, 2, 4);
    let mut completions = 0u32;
    let mut failures = 0u32;
    let mut kills_survived = 0u32;
    for library in [
        Library::OmpiAdapt,
        Library::OmpiDefault,
        Library::OmpiBlocking,
        Library::IntelMpi,
    ] {
        for op in [OpKind::Bcast, OpKind::Reduce] {
            for seed in 0..8u64 {
                let case = CollectiveCase {
                    machine: machine.clone(),
                    nranks: 16,
                    op,
                    library,
                    msg_bytes: 96 * 1024,
                };
                let plan = random_plan(seed ^ (op as u64) << 8, 16);
                let killing = !plan.kills.is_empty() || !plan.node_kills.is_empty();
                match run_case(&case, plan, 1) {
                    Outcome::Done { ranks_killed, .. } => {
                        completions += 1;
                        if killing && ranks_killed > 0 {
                            kills_survived += 1;
                        }
                    }
                    Outcome::Failed(text) => {
                        failures += 1;
                        assert!(
                            text.contains("rank failure")
                                || text.contains("deadlock")
                                || text.contains("retry budget"),
                            "{library:?} {op:?} seed {seed}: \
                             diagnosis must be structured, got: {text}"
                        );
                    }
                }
            }
        }
    }
    // The mix must actually exercise both endings.
    assert!(completions > 0, "no schedule completed");
    assert!(failures > 0, "no schedule produced a structured failure");
    assert!(
        kills_survived > 0,
        "some kill schedules must be survived outright"
    );
}

#[test]
fn soak_outcomes_are_byte_identical_across_thread_counts() {
    // The same schedule at 1, 2, 4, and 8 worker threads: identical
    // outcome, bit-for-bit — finish times on success, rendered diagnosis
    // on failure. (The diagnosis embeds event-order-sensitive detail, so
    // string equality is a strict determinism check.)
    let machine = profiles::minicluster(2, 2, 4);
    for library in [Library::OmpiAdapt, Library::OmpiDefault] {
        for seed in 0..6u64 {
            let case = CollectiveCase {
                machine: machine.clone(),
                nranks: 16,
                op: OpKind::Bcast,
                library,
                msg_bytes: 128 * 1024,
            };
            let base = run_case(&case, random_plan(seed, 16), 1);
            for threads in [2usize, 4, 8] {
                let got = run_case(&case, random_plan(seed, 16), threads);
                assert_eq!(
                    base, got,
                    "{library:?} seed {seed}: outcome diverged at {threads} threads"
                );
            }
        }
    }
}

#[test]
fn soak_adapt_survives_every_early_interior_kill() {
    // Sharper than the random mix: kill *each* rank of the broadcast tree
    // in turn (except the root), early enough for the detector to beat
    // the adopter's completion. ADAPT's shrink recovery must carry every
    // single case — no rank is load-bearing beyond the root.
    let machine = profiles::minicluster(2, 2, 4);
    for victim in 1..16u32 {
        let case = CollectiveCase {
            machine: machine.clone(),
            nranks: 16,
            op: OpKind::Bcast,
            library: Library::OmpiAdapt,
            msg_bytes: 96 * 1024,
        };
        let plan = FaultPlan::lossy(victim as u64, 0.0)
            .with_kill(victim, t_us(5))
            .with_rto(Duration::from_micros(5));
        match run_case(&case, plan, 1) {
            Outcome::Done {
                ranks_killed,
                failures_detected,
                ..
            } => {
                assert_eq!(ranks_killed, 1, "victim {victim}");
                assert_eq!(failures_detected, 1, "victim {victim}");
            }
            Outcome::Failed(text) => {
                panic!("killing rank {victim} early must be survivable: {text}")
            }
        }
    }
}
