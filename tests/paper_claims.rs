//! The paper's headline claims, asserted at reduced scale. These are the
//! qualitative shapes EXPERIMENTS.md reports at full scale; here they gate
//! regressions on every `cargo test`.

use adapt::collectives::{run_once, CollectiveCase, IntelAlg, Library, OpKind};
use adapt::prelude::*;
use std::sync::Arc;

fn case(library: Library, op: OpKind, msg: u64) -> CollectiveCase {
    let machine = profiles::cori(2); // 64 ranks, keeps debug-mode runtimes low
    CollectiveCase {
        nranks: machine.cpu_job_size(),
        machine,
        op,
        library,
        msg_bytes: msg,
    }
}

/// §5.2.1: for large messages ADAPT outperforms the non-topology-aware
/// libraries on both operations.
#[test]
fn adapt_wins_large_messages() {
    for op in [OpKind::Bcast, OpKind::Reduce] {
        let adapt = run_once(&case(Library::OmpiAdapt, op, 4 << 20), 0.0, 1).0;
        for lib in [Library::OmpiDefault, Library::Mvapich] {
            let other = run_once(&case(lib, op, 4 << 20), 0.0, 1).0;
            assert!(
                adapt < other,
                "{op:?}: adapt {adapt:.0}us vs {} {other:.0}us",
                lib.label()
            );
        }
    }
}

/// §5.1.2: with the *same* topology-aware tree, the paper reports the
/// event-driven engine ~20% ahead of the Waitall engine. Our
/// processor-sharing lanes charge queueing to ADAPT's deeper windows on
/// saturated socket chains (see EXPERIMENTS.md E3), so clean runs land
/// within a few percent of each other — but under noise the Waitall
/// fences propagate delay and the event-driven engine wins decisively.
#[test]
fn adapt_vs_waitall_on_same_tree() {
    use adapt::collectives::{run_trial, NoiseScope, Trial};
    let clean_adapt = run_once(&case(Library::OmpiAdapt, OpKind::Bcast, 4 << 20), 0.0, 1).0;
    let clean_topo = run_once(
        &case(Library::OmpiDefaultTopo, OpKind::Bcast, 4 << 20),
        0.0,
        1,
    )
    .0;
    assert!(
        clean_adapt < clean_topo * 1.15,
        "clean: event-driven {clean_adapt:.0}us must stay within 15% of Waitall {clean_topo:.0}us"
    );
    let noisy = |library: Library| {
        let tr = run_trial(&Trial {
            case: case(library, OpKind::Bcast, 4 << 20),
            noise_percent: 10.0,
            scope: NoiseScope::AllRanks,
            iterations: 8,
            repeats: 3,
            seed: 6,
        });
        assert!(tr.audit.is_clean(), "{}", tr.audit);
        tr.mean_us
    };
    let noisy_adapt = noisy(Library::OmpiAdapt);
    let noisy_topo = noisy(Library::OmpiDefaultTopo);
    assert!(
        noisy_adapt < noisy_topo,
        "noisy: event-driven {noisy_adapt:.0}us must beat Waitall {noisy_topo:.0}us"
    );
}

/// §5.1.2 (small-message caveat): the pipelined topology-aware design
/// needs enough segments, so it may lose at small sizes — assert it is at
/// least not catastrophically behind (within 5x of the tuned module), and
/// that its advantage appears by 4 MB.
#[test]
fn small_message_pipeline_fill_caveat() {
    let small_adapt = run_once(&case(Library::OmpiAdapt, OpKind::Bcast, 64 << 10), 0.0, 1).0;
    let small_tuned = run_once(&case(Library::OmpiDefault, OpKind::Bcast, 64 << 10), 0.0, 1).0;
    assert!(small_adapt < small_tuned * 5.0);
    let large_adapt = run_once(&case(Library::OmpiAdapt, OpKind::Bcast, 4 << 20), 0.0, 1).0;
    let large_tuned = run_once(&case(Library::OmpiDefault, OpKind::Bcast, 4 << 20), 0.0, 1).0;
    assert!(large_adapt < large_tuned);
}

/// §3.1 vs §3.2: the single-communicator topology-aware tree overlaps
/// levels that the multi-communicator hierarchy serializes.
#[test]
fn single_communicator_beats_phased_hierarchy() {
    let adapt = run_once(&case(Library::OmpiAdapt, OpKind::Bcast, 4 << 20), 0.0, 1).0;
    let hier = run_once(
        &case(
            Library::IntelTopo(IntelAlg::ShmKnomial),
            OpKind::Bcast,
            4 << 20,
        ),
        0.0,
        1,
    )
    .0;
    assert!(adapt < hier, "adapt {adapt:.0}us vs hierarchy {hier:.0}us");
}

/// Figure 10: ADAPT's chain pipeline cost is nearly independent of rank
/// count once the pipeline is full.
#[test]
fn strong_scaling_is_nearly_flat() {
    let time_at = |nodes: u32| {
        let machine = profiles::cori(nodes);
        let case = CollectiveCase {
            nranks: machine.cpu_job_size(),
            machine,
            op: OpKind::Bcast,
            library: Library::OmpiAdapt,
            msg_bytes: 4 << 20,
        };
        run_once(&case, 0.0, 1).0
    };
    let small = time_at(2); // 64 ranks
    let large = time_at(6); // 192 ranks
    assert!(
        large < small * 1.6,
        "3x more ranks must cost <1.6x time: {small:.0}us -> {large:.0}us"
    );
}

/// Every comparator of the evaluation satisfies the simulator-wide
/// invariant audit on both operations: bytes conserved from send to
/// receive, completions matched per rank, no causality violations, and a
/// consistent event queue. A figure produced by a run that fails these
/// checks would not be worth plotting.
#[test]
fn every_comparator_passes_invariant_audit() {
    let machine = profiles::minicluster(2, 2, 4);
    let nranks = 16;
    for library in [
        Library::OmpiAdapt,
        Library::OmpiDefault,
        Library::OmpiDefaultTopo,
        Library::OmpiBlocking,
        Library::IntelMpi,
        Library::CrayMpi,
        Library::Mvapich,
    ] {
        for op in [OpKind::Bcast, OpKind::Reduce] {
            let case = CollectiveCase {
                machine: machine.clone(),
                nranks,
                op,
                library,
                msg_bytes: 1 << 20,
            };
            let world = World::cpu(machine.clone(), nranks, ClusterNoise::silent(nranks));
            let res = world.run(case.programs());
            assert!(
                res.audit.is_clean(),
                "{} {op:?}: {}",
                library.label(),
                res.audit
            );
            assert_eq!(res.audit.total_sends_posted(), res.stats.messages);
            assert_eq!(res.audit.net_delivered_bytes, res.stats.delivered_bytes);
        }
    }
}

/// §2.2.1: a deeper receive window M "minimizes the chance of unexpected
/// segments" (the paper's wording — eager bursts can still outrun the
/// window when the receiver's CPU lags). This is an eager-protocol
/// phenomenon (4 KB segments = the minicluster eager limit); rendezvous
/// segments cannot be unexpected at all.
#[test]
fn receive_window_rule() {
    let machine = profiles::minicluster(2, 1, 4);
    let nranks = 8;
    let run_with = |n_out: u32, m_out: u32| {
        let placement = Placement::block_cpu(machine.shape, nranks);
        let tree = Arc::new(topology_aware_tree(&placement, TopoTreeConfig::default()));
        let spec = BcastSpec {
            tree,
            msg_bytes: 2 << 20,
            cfg: AdaptConfig::default()
                .with_seg_size(4 * 1024)
                .with_outstanding(n_out, m_out),
            data: None,
        };
        let world = World::cpu(machine.clone(), nranks, ClusterNoise::silent(nranks));
        let res = world.run(spec.programs());
        // Unexpected arrivals exercise the buffered-copy path; bytes must
        // still be conserved through it.
        assert!(res.audit.is_clean(), "{}", res.audit);
        res.stats.unexpected_matches
    };
    let deep = run_with(4, 12);
    let shallow = run_with(12, 2);
    assert!(
        deep < shallow,
        "deeper windows must reduce unexpected arrivals: M=12 -> {deep}, M=2 -> {shallow}"
    );
    // Rendezvous-sized segments cannot be unexpected.
    let rndv = {
        let placement = Placement::block_cpu(machine.shape, nranks);
        let tree = Arc::new(topology_aware_tree(&placement, TopoTreeConfig::default()));
        let spec = BcastSpec {
            tree,
            msg_bytes: 2 << 20,
            cfg: AdaptConfig::default().with_seg_size(64 * 1024),
            data: None,
        };
        let world = World::cpu(machine.clone(), nranks, ClusterNoise::silent(nranks));
        let res = world.run(spec.programs());
        assert!(res.audit.is_clean(), "{}", res.audit);
        res.stats.unexpected_matches
    };
    assert_eq!(rndv, 0, "rendezvous segments are never unexpected");
}
