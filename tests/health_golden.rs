//! Golden fixture for the online health monitor.
//!
//! One seeded-stall ADAPT broadcast with the monitor attached, its
//! `adapt-obs-health-v1` artifact pinned byte-for-byte: snapshot count,
//! detector thresholds, the alert timeline (kinds, subjects, firing
//! times), and the JSON shape downstream tooling parses. Any change to
//! the snapshot cadence, the detector arithmetic, or the export format
//! moves this fixture and must be reviewed as a behaviour change, not
//! silently absorbed.
//!
//! Regenerate (only when a behaviour change is intended and reviewed):
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test --test health_golden
//! ```

use adapt::obs::{health_json, Monitor, MonitorConfig};
use adapt::prelude::*;
use bytes::Bytes;
use std::path::PathBuf;
use std::sync::Arc;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn check(name: &str, got: String) {
    let path = golden_dir().join(name);
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::create_dir_all(golden_dir()).unwrap();
        std::fs::write(&path, &got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); run GOLDEN_REGEN=1",
            path.display()
        )
    });
    assert_eq!(
        got,
        want,
        "health golden artifact diverged from {} — if the change is \
         intentional, regenerate with GOLDEN_REGEN=1",
        path.display()
    );
}

#[test]
fn stalled_bcast_16r_200k_health_artifact() {
    let machine = profiles::minicluster(2, 2, 4);
    let nranks = 16;
    let data: Vec<u8> = (0..200_000u32).map(|i| (i % 249) as u8).collect();
    let placement = Placement::block_cpu(machine.shape, nranks);
    let tree = Arc::new(topology_aware_tree(&placement, TopoTreeConfig::default()));
    let spec = BcastSpec {
        tree,
        msg_bytes: data.len() as u64,
        cfg: AdaptConfig::default().with_seg_size(32 * 1024),
        data: Some(Bytes::from(data)),
    };
    // Leaf rank 15 freezes from 20µs to 5ms; its rendezvous parent
    // wedges with it, so the quorum is dropped to 80% to let the other
    // fourteen ranks arm the straggler detector (see tests/health.rs).
    let plan = FaultPlan::default().with_stall(
        15,
        Time::ZERO + Duration::from_micros(20),
        Time::ZERO + Duration::from_millis(5),
    );
    let monitor = Monitor::with_config(MonitorConfig {
        straggler_quorum_pm: 800,
        ..MonitorConfig::new(20_000)
    });
    let world = World::cpu(machine, nranks, ClusterNoise::silent(nranks))
        .with_faults(plan)
        .with_monitor(monitor);
    let res = world.run(spec.programs());
    assert!(res.audit.is_clean(), "{}", res.audit);
    let health = res.health.as_ref().expect("monitored run carries health");
    assert!(
        health.total_alerts() > 0,
        "the pinned run must exercise the detectors"
    );
    check("health_stall15_16r_200k.json", health_json(health));
}
