//! Golden recordings for the what-if engine and the CI regression gate.
//!
//! Two pinned `adapt-obs-v1` recordings of the mini scenario the CI
//! gate replays — the same configuration `adapt-cli --machine mini
//! --nodes 2 --msg 262144 --seed 42 --obs-out ...` exports, for the
//! ADAPT and OMPI-default libraries. The fixtures must stay
//! byte-identical to a fresh recording (full determinism), replayable
//! bit-exactly by the no-op intervention, and diff-clean against a
//! fresh run (the `--gate` check CI applies).
//!
//! Regenerate (only when a behaviour change is intended and reviewed):
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test --test whatif_golden
//! ```

use adapt::collectives::{record_once, CollectiveCase, Library, NoiseScope, OpKind};
use adapt::obs::{diff_runs, from_json, predict, to_json, Intervention};
use adapt::prelude::*;
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/whatif")
}

/// The CI gate scenario: `--machine mini --nodes 2` (32 ranks),
/// 256 KiB broadcast, quiet, seed 42, PerNode scope — exactly what
/// `adapt-cli` records for the fresh side of the gate diff.
fn gate_case(library: Library) -> CollectiveCase {
    CollectiveCase {
        machine: profiles::minicluster(2, 2, 8),
        nranks: 32,
        op: OpKind::Bcast,
        library,
        msg_bytes: 256 * 1024,
    }
}

fn check(name: &str, got: &str) -> String {
    let path = golden_dir().join(name);
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::create_dir_all(golden_dir()).unwrap();
        std::fs::write(&path, got).unwrap();
        return got.to_string();
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); run GOLDEN_REGEN=1",
            path.display()
        )
    });
    assert_eq!(
        got,
        want,
        "golden recording diverged from {} — a behaviour change moved the \
         simulation; if intentional, regenerate with GOLDEN_REGEN=1",
        path.display()
    );
    want
}

#[test]
fn golden_recordings_stay_replayable_and_gate_clean() {
    for (name, library) in [
        ("bcast_mini32_256k_adapt.json", Library::OmpiAdapt),
        ("bcast_mini32_256k_default.json", Library::OmpiDefault),
    ] {
        let case = gate_case(library);
        let fresh = record_once(&case, NoiseScope::PerNode, 0.0, 42, 0)
            .obs
            .expect("recorder attached");
        let committed = from_json(&check(name, &to_json(&fresh))).unwrap();
        // The committed fixture replays bit-exactly under no intervention.
        let p = predict(&committed, &Intervention::Noop).unwrap();
        assert_eq!(p.per_rank_finish_ns, committed.per_rank_finish_ns);
        // The CI gate: a fresh run of the same configuration must not
        // regress against the committed baseline — today it is exactly 0.
        let d = diff_runs(&committed, &fresh);
        assert_eq!(d.delta_ns(), 0, "{name}: fresh run drifted");
        assert!(d.regression_pct() <= 5.0);
    }
}

#[test]
fn golden_gap_attribution_between_libraries() {
    let load = |name: &str| {
        let case = gate_case(if name.contains("adapt") {
            Library::OmpiAdapt
        } else {
            Library::OmpiDefault
        });
        record_once(&case, NoiseScope::PerNode, 0.0, 42, 0)
            .obs
            .expect("recorder attached")
    };
    let adapt = load("adapt");
    let default = load("default");
    let d = diff_runs(&default, &adapt);
    // The walkthrough's claim: the diff attributes the whole gap.
    assert_eq!(d.attributed_ns(), d.delta_ns());
    assert_eq!(
        d.delta_ns(),
        adapt.makespan_ns() as i64 - default.makespan_ns() as i64
    );
}
