//! End-to-end contract of the online health monitor: seeded faults fire
//! the matching detector, clean runs fire nothing, and the live
//! [`HealthView`] agrees with the final report.
//!
//! Every fixture here is deterministic (seeded noise, seeded faults), so
//! the assertions are exact — an alert either fires on every run or on
//! none.

use adapt::collectives::{noise_for_case, CollectiveCase, Library, NoiseScope, OpKind};
use adapt::obs::{AlertKind, HealthReport, Monitor, MonitorConfig};
use adapt::prelude::*;
use bytes::Bytes;
use std::sync::Arc;

/// The golden quick-scale broadcast (fig8's shape) with a monitor
/// attached.
fn monitored_fig8(interval_ns: u64) -> HealthReport {
    let case = CollectiveCase {
        machine: profiles::cori(4),
        nranks: 128,
        op: OpKind::Bcast,
        library: Library::OmpiAdapt,
        msg_bytes: 1 << 20,
    };
    let noise = noise_for_case(&case, NoiseScope::PerNode, 10.0, 42);
    let world = World::cpu(case.machine.clone(), case.nranks, noise)
        .with_monitor(Monitor::new(interval_ns));
    let res = world.run(case.programs());
    assert!(res.audit.is_clean(), "{}", res.audit);
    res.health.expect("monitored run carries a health report")
}

/// A small two-node broadcast with an explicit fault plan; returns the
/// health report of the completed run.
fn monitored_minicluster(plan: FaultPlan, monitor: Monitor) -> HealthReport {
    let (world, programs) = minicluster_bcast(plan, monitor);
    let res = world.run(programs);
    res.health.expect("monitored run carries a health report")
}

/// A straggler-sensitive monitor: the 20µs cadence of every fixture
/// here, with the finish quorum dropped from 90% to 80% — a stalled
/// rank also wedges its rendezvous parent (the CTS never comes back),
/// so on 16 ranks two laggards are normal for one injected stall.
fn straggler_monitor() -> Monitor {
    Monitor::with_config(MonitorConfig {
        straggler_quorum_pm: 800,
        ..MonitorConfig::new(20_000)
    })
}

fn minicluster_bcast(plan: FaultPlan, monitor: Monitor) -> (World, Vec<Box<dyn RankProgram>>) {
    let machine = profiles::minicluster(2, 2, 4);
    let nranks = 16;
    let data: Vec<u8> = (0..200_000u32).map(|i| (i % 249) as u8).collect();
    let placement = Placement::block_cpu(machine.shape, nranks);
    let tree = Arc::new(topology_aware_tree(&placement, TopoTreeConfig::default()));
    let spec = BcastSpec {
        tree,
        msg_bytes: data.len() as u64,
        cfg: AdaptConfig::default().with_seg_size(32 * 1024),
        data: Some(Bytes::from(data)),
    };
    let world = World::cpu(machine, nranks, ClusterNoise::silent(nranks))
        .with_faults(plan)
        .with_monitor(monitor);
    (world, spec.programs())
}

#[test]
fn a_clean_run_takes_snapshots_and_fires_zero_alerts() {
    let health = monitored_fig8(20_000);
    assert!(health.snapshots > 10, "{health:?}");
    assert_eq!(
        health.total_alerts(),
        0,
        "a healthy run must stay quiet: {:?}",
        health.alerts
    );
    assert_eq!(health.nranks, 128);
    assert_eq!(health.interval_ns, 20_000);
}

#[test]
fn a_seeded_stall_fires_a_straggler_alert_for_the_stalled_rank() {
    // Rank 15 (a tree leaf — nothing downstream, so the other 15 ranks
    // finish on time and arm the quorum) freezes from 20µs to 5ms, then
    // resumes, so the run still completes.
    let plan = FaultPlan::default().with_stall(
        15,
        Time::ZERO + Duration::from_micros(20),
        Time::ZERO + Duration::from_millis(5),
    );
    let health = monitored_minicluster(plan, straggler_monitor());
    assert!(
        health.counts[AlertKind::Straggler.index()] >= 1,
        "the stalled rank must be flagged: {health:?}"
    );
    let stragglers: Vec<u32> = health
        .alerts
        .iter()
        .filter(|(a, _)| a.kind == AlertKind::Straggler)
        .map(|(a, _)| a.subject)
        .collect();
    assert!(
        stragglers.contains(&15),
        "rank 15 is the straggler: {stragglers:?}"
    );
    assert!(
        !stragglers.contains(&0),
        "the root made normal progress: {stragglers:?}"
    );
}

#[test]
fn a_degraded_link_fires_a_hot_link_alert_on_that_link() {
    // Socket 1's shared-memory link at 2% capacity for most of the run:
    // it stays saturated long after its three sibling shm links drain.
    // (The shm class is the one where a 2-node broadcast keeps several
    // peers active — each NIC class has exactly one sender here, and the
    // detector refuses to judge a class with a single active member.)
    let plan = FaultPlan::default().with_degrade_link(
        "Shm(1)",
        0.02,
        1.0,
        Time::ZERO + Duration::from_micros(10),
        Time::ZERO + Duration::from_millis(50),
    );
    let health = monitored_minicluster(plan, Monitor::new(20_000));
    assert!(
        health.counts[AlertKind::HotLink.index()] >= 1,
        "the degraded shm link must be flagged: {health:?}"
    );
    let hot: Vec<&str> = health
        .alerts
        .iter()
        .filter(|(a, _)| a.kind == AlertKind::HotLink)
        .map(|(_, label)| label.as_str())
        .collect();
    assert!(
        hot.iter().all(|l| l.contains("socket1/shm")),
        "alerts resolve to the topology name of the link: {hot:?}"
    );
}

#[test]
fn the_same_fixture_without_the_fault_stays_quiet() {
    // The control for the two detector tests above: identical world,
    // inert plan (attaches nothing), zero alerts.
    let health = monitored_minicluster(FaultPlan::default(), Monitor::new(20_000));
    assert_eq!(health.total_alerts(), 0, "{:?}", health.alerts);
    assert!(health.snapshots > 0);
}

#[test]
fn the_live_view_agrees_with_the_final_report() {
    let plan = FaultPlan::default().with_stall(
        15,
        Time::ZERO + Duration::from_micros(20),
        Time::ZERO + Duration::from_millis(5),
    );
    let monitor = straggler_monitor();
    let view = monitor.view();
    let machine = profiles::minicluster(2, 2, 4);
    let nranks = 16;
    let data: Vec<u8> = (0..200_000u32).map(|i| (i % 249) as u8).collect();
    let placement = Placement::block_cpu(machine.shape, nranks);
    let tree = Arc::new(topology_aware_tree(&placement, TopoTreeConfig::default()));
    let spec = BcastSpec {
        tree,
        msg_bytes: data.len() as u64,
        cfg: AdaptConfig::default().with_seg_size(32 * 1024),
        data: Some(Bytes::from(data)),
    };
    let world = World::cpu(machine, nranks, ClusterNoise::silent(nranks))
        .with_faults(plan)
        .with_monitor(monitor);
    let res = world.run(spec.programs());
    let health = res.health.expect("health report");
    // The view outlives the monitor (shared state) and saw every alert.
    assert_eq!(view.total_alerts(), health.total_alerts());
    assert!(view.total_alerts() >= 1, "the stall fired through the view");
    assert_eq!(view.snapshots(), health.snapshots);
    // The straggler latch is *live*: rank 15 was flagged while stalled,
    // then recovered and finished, so by end-of-run it reads healthy
    // again (the report above still carries the alert it fired).
    assert!(!view.is_straggler(15), "a recovered rank reads healthy");
    assert!(view.last_alert().is_some());
    assert_eq!(
        view.count(AlertKind::Straggler),
        health.counts[AlertKind::Straggler.index()]
    );
}

#[test]
fn a_global_stall_flatlines_before_the_watchdog_would_fire() {
    // Every rank freezes for 2ms mid-run: no flows, no progress, a
    // perfectly flat world. The flatline detector needs 3 unchanged
    // 20µs snapshots (≈60µs of quiet) — two orders of magnitude before
    // a 100ms watchdog would have diagnosed anything.
    let mut plan = FaultPlan::default();
    for r in 0..16 {
        plan = plan.with_stall(
            r,
            Time::ZERO + Duration::from_micros(40),
            Time::ZERO + Duration::from_millis(2),
        );
    }
    let (world, programs) = minicluster_bcast(plan, Monitor::new(20_000));
    let res = world
        .with_watchdog(Duration::from_millis(100))
        .run(programs);
    let health = res.health.expect("health report");
    assert!(
        health.counts[AlertKind::ProgressFlatline.index()] >= 1,
        "a silent world must flatline: {health:?}"
    );
    let first_flatline = health
        .alerts
        .iter()
        .find(|(a, _)| a.kind == AlertKind::ProgressFlatline)
        .map(|(a, _)| a.t_ns)
        .expect("a flatline alert is kept");
    assert!(
        first_flatline < 2_000_000,
        "detected during the stall, not after: {first_flatline}ns"
    );
}
