//! What-if engine acceptance tests: counterfactual predictions validated
//! against ground-truth re-runs of the real simulator.
//!
//! The exactness ladder, weakest to strongest:
//! 1. a no-op intervention predicts the recording **bit-exactly**
//!    (per-rank finish times, not just the makespan);
//! 2. "disable noise" predicted from a *noisy* recording matches an
//!    actual `--noise 0` re-run bit-exactly;
//! 3. link rescales predicted from a quiet recording match the rescaled
//!    re-run bit-exactly on the mini scenario (no matching race flips);
//! 4. `diff(a, a)` is all-zero and diff attribution always covers 100%
//!    of the makespan delta.

use adapt::collectives::{
    record_once, run_intervened, CollectiveCase, Library, NoiseScope, OpKind,
};
use adapt::obs::{diff_runs, from_json, predict, to_json, Intervention, ObsData};
use adapt::prelude::*;

/// Mini machine, 8 ranks, eager+rendezvous mix: small enough that the
/// full predict→replay→compare cycle runs in milliseconds.
fn mini_case(msg_bytes: u64) -> CollectiveCase {
    CollectiveCase {
        machine: profiles::minicluster(2, 1, 4),
        nranks: 8,
        op: OpKind::Bcast,
        library: Library::OmpiAdapt,
        msg_bytes,
    }
}

fn record(case: &CollectiveCase, noise: f64, seed: u64) -> ObsData {
    record_once(case, NoiseScope::PerNode, noise, seed, 0)
        .obs
        .expect("recorder attached")
}

#[test]
fn noop_prediction_is_bit_exact_quiet() {
    let data = record(&mini_case(256 * 1024), 0.0, 1);
    let p = predict(&data, &Intervention::Noop).unwrap();
    assert_eq!(p.per_rank_finish_ns, data.per_rank_finish_ns);
    assert_eq!(p.predicted_ns, p.baseline_ns);
    assert_eq!(p.delta_ns(), 0);
}

/// Noise windows arrive on a 100 ms period; seed 1032 is one whose phase
/// lands windows inside this mini run (95 µs quiet → ~11.7 ms noisy), so
/// the noisy predictions below exercise real preemption stretching — and
/// one where the stretching does not reorder any program decision, the
/// precondition for bit-exact cross-configuration prediction (the
/// documented exactness contract in `obs::whatif`).
const NOISY_SEED: u64 = 1032;

fn record_noisy(case: &CollectiveCase) -> ObsData {
    record_once(case, NoiseScope::AllRanks, 10.0, NOISY_SEED, 0)
        .obs
        .expect("recorder attached")
}

#[test]
fn noop_prediction_is_bit_exact_noisy() {
    let data = record_noisy(&mini_case(256 * 1024));
    assert!(
        data.noise_windows.iter().any(|w| !w.is_empty()),
        "scenario must record noise windows"
    );
    let p = predict(&data, &Intervention::Noop).unwrap();
    assert_eq!(p.per_rank_finish_ns, data.per_rank_finish_ns);
    assert_eq!(p.predicted_ns, p.baseline_ns);
}

#[test]
fn noop_prediction_is_bit_exact_for_reduce() {
    let case = CollectiveCase {
        op: OpKind::Reduce,
        ..mini_case(128 * 1024)
    };
    let data = record(&case, 5.0, 7);
    let p = predict(&data, &Intervention::Noop).unwrap();
    assert_eq!(p.per_rank_finish_ns, data.per_rank_finish_ns);
}

#[test]
fn noise_off_prediction_matches_real_rerun_bit_exactly() {
    let case = mini_case(256 * 1024);
    let noisy = record_noisy(&case);
    let quiet = record(&case, 0.0, NOISY_SEED);
    assert_ne!(
        noisy.makespan_ns(),
        quiet.makespan_ns(),
        "noise must actually perturb the mini scenario"
    );
    let p = predict(&noisy, &Intervention::NoiseOff).unwrap();
    assert_eq!(
        p.per_rank_finish_ns, quiet.per_rank_finish_ns,
        "predicted quiet schedule must equal the real quiet run"
    );
    assert_eq!(p.predicted_ns, quiet.makespan_ns());
}

#[test]
fn rank_noise_off_prediction_matches_real_rerun() {
    let case = mini_case(256 * 1024);
    let noisy = record_noisy(&case);
    // Find a rank whose windows actually bit during the recorded run.
    let victim = noisy
        .noise_windows
        .iter()
        .position(|w| w.iter().any(|&(s, _)| s < noisy.makespan_ns()))
        .expect("some rank was preempted") as u32;
    let iv = Intervention::RankNoiseOff(victim);
    let p = predict(&noisy, &iv).unwrap();
    let actual = run_intervened(&case, NoiseScope::AllRanks, 10.0, NOISY_SEED, &iv, 0).unwrap();
    let actual_data = actual.obs.expect("recorder attached");
    assert_eq!(p.per_rank_finish_ns, actual_data.per_rank_finish_ns);
}

#[test]
fn link_scale_prediction_matches_real_rerun() {
    let case = mini_case(256 * 1024);
    let data = record(&case, 0.0, 3);
    for (pattern, factor) in [("NicTx", 2.0), ("Shm", 1.5), ("InterSocket", 0.5)] {
        let iv = Intervention::ScaleLink {
            pattern: pattern.into(),
            factor,
        };
        let p = predict(&data, &iv).unwrap();
        let actual = run_intervened(&case, NoiseScope::PerNode, 0.0, 3, &iv, 0).unwrap();
        let actual_ns = actual.makespan.as_nanos();
        assert_eq!(
            p.predicted_ns, actual_ns,
            "{pattern} x{factor}: predicted {} vs actual {actual_ns}",
            p.predicted_ns
        );
    }
}

#[test]
fn speedup_predictions_brake_and_accelerate_sanely() {
    let data = record(&mini_case(512 * 1024), 0.0, 5);
    let base = data.makespan_ns();
    // Faster NICs must not slow the run; slower must not speed it.
    let fast = predict(
        &data,
        &Intervention::ScaleLink {
            pattern: "NicTx".into(),
            factor: 4.0,
        },
    )
    .unwrap();
    let slow = predict(
        &data,
        &Intervention::ScaleLink {
            pattern: "NicTx".into(),
            factor: 0.25,
        },
    )
    .unwrap();
    assert!(fast.predicted_ns <= base, "{} > {base}", fast.predicted_ns);
    assert!(slow.predicted_ns >= base, "{} < {base}", slow.predicted_ns);
}

#[test]
fn json_round_trips_a_real_recording() {
    let data = record_noisy(&mini_case(256 * 1024));
    let back = from_json(&to_json(&data)).unwrap();
    assert_eq!(back.per_rank_finish_ns, data.per_rank_finish_ns);
    assert_eq!(back.msgs, data.msgs);
    assert_eq!(back.flows, data.flows);
    assert_eq!(back.dispatches, data.dispatches);
    assert_eq!(back.noise_windows, data.noise_windows);
    // The replay of the round-tripped recording is still bit-exact.
    let p = predict(&back, &Intervention::Noop).unwrap();
    assert_eq!(p.per_rank_finish_ns, data.per_rank_finish_ns);
}

#[test]
fn self_diff_is_all_zero_on_a_real_recording() {
    let data = record_noisy(&mini_case(256 * 1024));
    let d = diff_runs(&data, &data);
    assert_eq!(d.delta_ns(), 0);
    assert!(d.buckets.iter().all(|b| b.delta_ns() == 0));
}

#[test]
fn diff_attributes_the_whole_delta_between_real_runs() {
    let quiet = record(&mini_case(256 * 1024), 0.0, NOISY_SEED);
    let noisy = record_noisy(&mini_case(256 * 1024));
    let d = diff_runs(&quiet, &noisy);
    assert_ne!(d.delta_ns(), 0);
    assert_eq!(
        d.attributed_ns(),
        d.delta_ns(),
        "attribution must cover 100% of the makespan delta"
    );
    // Differencing two different libraries also attributes fully.
    let tuned = record(
        &CollectiveCase {
            library: Library::OmpiDefault,
            ..mini_case(256 * 1024)
        },
        0.0,
        42,
    );
    let d2 = diff_runs(&quiet, &tuned);
    assert_eq!(d2.attributed_ns(), d2.delta_ns());
}
