//! Determinism matrix for the sharded parallel simulation core.
//!
//! The contract: activating the sharded core ([`World::with_threads`] /
//! [`World::with_shards`]) must produce a byte-identical [`RunResult`] —
//! per-rank completion times, every `WorldStats` counter (including the
//! epoch/cross-shard counters themselves), and the audit report — at
//! every thread count, on every kind of fixture: golden collectives,
//! chaos schedules (loss + stalls), heavy noise, and a seeded
//! shard-count-≠-thread-count case. The counters are pure functions of
//! the event stream, never of the thread count.

use adapt::collectives::{noise_for_case, CollectiveCase, Library, NoiseScope, OpKind};
use adapt::mpi::RunResult;
use adapt::obs::{summary_json, StreamRecorder};
use adapt::prelude::*;
use bytes::Bytes;
use std::fmt::Write as _;
use std::sync::Arc;

/// Everything satellite-3 demands byte-identical, in one comparable blob:
/// completion times, busy times, all WorldStats counters, the full audit.
fn fingerprint(res: &RunResult) -> String {
    let mut out = String::new();
    writeln!(out, "makespan={}", res.makespan.as_nanos()).unwrap();
    for (r, t) in res.per_rank_finish.iter().enumerate() {
        writeln!(out, "finish {r} {}", t.as_nanos()).unwrap();
    }
    for (r, d) in res.per_rank_busy.iter().enumerate() {
        writeln!(out, "busy {r} {}", d.as_nanos()).unwrap();
    }
    writeln!(out, "stats:\n{}", res.stats).unwrap();
    writeln!(out, "audit:\n{}", res.audit).unwrap();
    out
}

/// Build-and-run closure for one fixture; `threads = 0` means the
/// pristine default (single-queue) path.
fn run_matrix(name: &str, build: impl Fn() -> (World, Vec<Box<dyn RankProgram>>)) {
    let run = |threads: usize| {
        let (world, programs) = build();
        let world = if threads == 0 {
            world
        } else {
            world.with_threads(threads)
        };
        world.run(programs)
    };
    let baseline = run(1);
    assert!(baseline.audit.is_clean(), "{name}: {}", baseline.audit);
    assert!(
        baseline.stats.par_epochs > 0,
        "{name}: the sharded core must count epochs"
    );
    let want = fingerprint(&baseline);
    for threads in [2usize, 4, 8] {
        let got = fingerprint(&run(threads));
        assert_eq!(
            got, want,
            "{name}: RunResult diverged between threads=1 and threads={threads}"
        );
    }
    // The default path must agree on everything except the epoch counters
    // (which only exist once the event stream is shard-attributed).
    let default = run(0);
    assert_eq!(default.per_rank_finish, baseline.per_rank_finish, "{name}");
    assert_eq!(default.per_rank_busy, baseline.per_rank_busy, "{name}");
    assert_eq!(default.stats.events, baseline.stats.events, "{name}");
    assert_eq!(default.stats.messages, baseline.stats.messages, "{name}");
    assert_eq!(
        default.stats.par_epochs, 0,
        "{name}: default path is unsharded"
    );
    assert_eq!(
        default.audit.to_string(),
        baseline.audit.to_string(),
        "{name}"
    );
}

/// Golden fixture: the quick-scale ADAPT broadcast on cori, with noise.
#[test]
fn golden_fixture_is_thread_count_invariant() {
    run_matrix("golden bcast", || {
        let case = CollectiveCase {
            machine: profiles::cori(4),
            nranks: 128,
            op: OpKind::Bcast,
            library: Library::OmpiAdapt,
            msg_bytes: 1 << 20,
        };
        let noise = noise_for_case(&case, NoiseScope::PerNode, 10.0, 42);
        let world = World::cpu(case.machine.clone(), case.nranks, noise);
        (world, case.programs())
    });
}

/// The streaming telemetry summary is a pure function of the probe
/// stream, and the sharded core pops events in a byte-identical order at
/// every pool width — so the exported summary JSON must be byte-identical
/// at threads 1/2/4/8 on the golden fixture.
#[test]
fn streaming_summary_is_thread_count_invariant() {
    let run = |threads: usize| {
        let case = CollectiveCase {
            machine: profiles::cori(4),
            nranks: 128,
            op: OpKind::Bcast,
            library: Library::OmpiAdapt,
            msg_bytes: 1 << 20,
        };
        let noise = noise_for_case(&case, NoiseScope::PerNode, 10.0, 42);
        let world = World::cpu(case.machine.clone(), case.nranks, noise)
            .with_threads(threads)
            .with_recorder(Box::new(StreamRecorder::new()));
        let res = world.run(case.programs());
        assert!(res.audit.is_clean(), "{}", res.audit);
        summary_json(&res.summary.expect("streaming run carries a summary"))
    };
    let want = run(1);
    assert!(want.contains("\"format\": \"adapt-obs-summary-v1\""));
    for threads in [2usize, 4, 8] {
        assert_eq!(
            run(threads),
            want,
            "summary JSON diverged between threads=1 and threads={threads}"
        );
    }
}

/// The health monitor's snapshot timer rides the same deterministic
/// queue as every other event, so the exported health artifact — the
/// snapshot count, every detector counter, and the full alert stream —
/// must be byte-identical at threads 1/2/4/8 on the golden fixture.
#[test]
fn health_artifact_is_thread_count_invariant() {
    use adapt::obs::{health_json, Monitor};
    let run = |threads: usize| {
        let case = CollectiveCase {
            machine: profiles::cori(4),
            nranks: 128,
            op: OpKind::Bcast,
            library: Library::OmpiAdapt,
            msg_bytes: 1 << 20,
        };
        let noise = noise_for_case(&case, NoiseScope::PerNode, 10.0, 42);
        let world = World::cpu(case.machine.clone(), case.nranks, noise)
            .with_threads(threads)
            .with_monitor(Monitor::new(20_000));
        let res = world.run(case.programs());
        assert!(res.audit.is_clean(), "{}", res.audit);
        health_json(&res.health.expect("monitored run carries a health report"))
    };
    let want = run(1);
    assert!(want.contains("\"format\": \"adapt-obs-health-v1\""));
    for threads in [2usize, 4, 8] {
        assert_eq!(
            run(threads),
            want,
            "health JSON diverged between threads=1 and threads={threads}"
        );
    }
}

/// Chaos fixture: seeded loss plus a rank stall — retransmit timers
/// (tracked, cancellable events) and fault commands all cross the
/// sharded queue.
#[test]
fn chaos_fixture_is_thread_count_invariant() {
    let data: Vec<u8> = (0..200_000u32).map(|i| (i % 249) as u8).collect();
    run_matrix("chaos loss+stall", move || {
        let machine = profiles::minicluster(2, 2, 4);
        let nranks = 16;
        let placement = Placement::block_cpu(machine.shape, nranks);
        let tree = Arc::new(topology_aware_tree(&placement, TopoTreeConfig::default()));
        let spec = BcastSpec {
            tree,
            msg_bytes: data.len() as u64,
            cfg: AdaptConfig::default().with_seg_size(32 * 1024),
            data: Some(Bytes::from(data.clone())),
        };
        let plan = FaultPlan::lossy(7, 0.02)
            .with_stall(
                3,
                Time::ZERO + Duration::from_micros(20),
                Time::ZERO + Duration::from_micros(120),
            )
            .with_rto(Duration::from_micros(60));
        let world = World::cpu(machine, nranks, ClusterNoise::silent(nranks)).with_faults(plan);
        (world, spec.programs())
    });
}

/// Noise-heavy fixture: 30% injected noise stresses preemption and
/// deferral paths far past the golden fixtures.
#[test]
fn noise_heavy_fixture_is_thread_count_invariant() {
    run_matrix("noise-heavy reduce", || {
        let case = CollectiveCase {
            machine: profiles::cori(2),
            nranks: 64,
            op: OpKind::Reduce,
            library: Library::OmpiAdapt,
            msg_bytes: 1 << 19,
        };
        let noise = noise_for_case(&case, NoiseScope::AllRanks, 30.0, 1234);
        let world = World::cpu(case.machine.clone(), case.nranks, noise);
        (world, case.programs())
    });
}

/// Shard count decoupled from both thread count and node count: a seeded
/// 3-shard partition of a 2-node machine must still be byte-identical to
/// the per-node sharding and to the sequential engine.
#[test]
fn shard_count_neq_thread_count_is_still_exact() {
    let build = || {
        let case = CollectiveCase {
            machine: profiles::minicluster(2, 2, 4),
            nranks: 16,
            op: OpKind::Bcast,
            library: Library::OmpiAdapt,
            msg_bytes: 256 * 1024,
        };
        let noise = noise_for_case(&case, NoiseScope::PerNode, 15.0, 7);
        let world = World::cpu(case.machine.clone(), case.nranks, noise);
        (world, case.programs())
    };
    let (world, programs) = build();
    let baseline = world.run(programs);
    assert!(baseline.audit.is_clean(), "{}", baseline.audit);
    for threads in [1usize, 2, 4, 8] {
        let (world, programs) = build();
        // 3 shards on a 2-node machine, at every pool width.
        let res = world.with_shards(3).run(programs);
        assert_eq!(
            res.per_rank_finish, baseline.per_rank_finish,
            "threads={threads}: a 3-shard partition moved completion times"
        );
        assert_eq!(
            res.audit.to_string(),
            baseline.audit.to_string(),
            "threads={threads}"
        );
        assert!(res.stats.par_epochs > 0);
        assert!(
            res.stats.cross_shard_events > 0,
            "a 16-rank collective split across 3 shards must cross shards"
        );
    }
}
