//! Golden-trace determinism tests.
//!
//! The matching index and the incremental fair-share refresh are pure
//! performance rewrites: they must not move a single delivery by a single
//! nanosecond. These tests run quick-scale ADAPT broadcast and reduce on
//! fixed seeds (with noise, so preemption and deferral paths are
//! exercised) and compare per-rank completion times byte-for-byte against
//! fixtures captured *before* the rewrites under `tests/golden/`.
//!
//! Regenerate (only when a behaviour change is intended and reviewed):
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test --test golden_trace
//! ```

use adapt::collectives::{CollectiveCase, Library, NoiseScope, OpKind};
use adapt::prelude::*;
use std::fmt::Write as _;
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Serialize a run: header with aggregate counters, then one line per
/// rank with its completion time in integer nanoseconds.
fn serialize(res: &adapt::mpi::RunResult) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "events={} messages={} delivered_bytes={}",
        res.stats.events, res.stats.messages, res.stats.delivered_bytes
    )
    .unwrap();
    for (rank, t) in res.per_rank_finish.iter().enumerate() {
        writeln!(out, "{rank},{}", t.as_nanos()).unwrap();
    }
    out
}

/// Run one fixture case. `threads = None` is the default single-queue
/// path (what the fixtures were captured on); `Some(t)` activates the
/// sharded parallel core, which must reproduce the same fixtures
/// byte-for-byte at any thread count.
fn run_case_at(
    op: OpKind,
    msg_bytes: u64,
    noise_percent: f64,
    seed: u64,
    threads: Option<usize>,
) -> String {
    let case = CollectiveCase {
        machine: profiles::cori(4),
        nranks: 128,
        op,
        library: Library::OmpiAdapt,
        msg_bytes,
    };
    let noise = adapt::collectives::noise_for_case(&case, NoiseScope::PerNode, noise_percent, seed);
    let mut world = World::cpu(case.machine.clone(), case.nranks, noise);
    if let Some(t) = threads {
        world = world.with_threads(t);
    }
    let res = world.run(case.programs());
    assert!(res.audit.is_clean(), "{}", res.audit);
    serialize(&res)
}

fn run_case(op: OpKind, msg_bytes: u64, noise_percent: f64, seed: u64) -> String {
    run_case_at(op, msg_bytes, noise_percent, seed, None)
}

/// Every golden fixture, re-run on the sharded core at 1/2/4/8 threads —
/// each must match the sequential fixture byte-for-byte.
fn check_thread_matrix(name: &str, op: OpKind, msg_bytes: u64, noise_percent: f64, seed: u64) {
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        return; // fixtures are captured on the default path only
    }
    for threads in [1usize, 2, 4, 8] {
        let got = run_case_at(op, msg_bytes, noise_percent, seed, Some(threads));
        let path = golden_dir().join(name);
        let want = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing golden fixture {}: {e}", path.display()));
        assert_eq!(
            got, want,
            "golden trace {name} diverged at threads={threads} — the sharded \
             core must be byte-identical to the sequential engine"
        );
    }
}

fn check(name: &str, got: String) {
    let path = golden_dir().join(name);
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::create_dir_all(golden_dir()).unwrap();
        std::fs::write(&path, &got).unwrap();
        eprintln!("regenerated {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden fixture {}: {e}", path.display()));
    assert_eq!(
        got, want,
        "golden trace {name} diverged — per-rank completion times moved; \
         a perf-only change must be time-identical"
    );
}

#[test]
fn golden_bcast_quiet() {
    check(
        "bcast_128r_1m_quiet.txt",
        run_case(OpKind::Bcast, 1 << 20, 0.0, 1),
    );
}

#[test]
fn golden_bcast_noisy() {
    check(
        "bcast_128r_1m_noise10_seed42.txt",
        run_case(OpKind::Bcast, 1 << 20, 10.0, 42),
    );
}

#[test]
fn golden_reduce_quiet() {
    check(
        "reduce_128r_1m_quiet.txt",
        run_case(OpKind::Reduce, 1 << 20, 0.0, 1),
    );
}

#[test]
fn golden_reduce_noisy() {
    check(
        "reduce_128r_1m_noise10_seed42.txt",
        run_case(OpKind::Reduce, 1 << 20, 10.0, 42),
    );
}

#[test]
fn golden_bcast_quiet_thread_matrix() {
    check_thread_matrix("bcast_128r_1m_quiet.txt", OpKind::Bcast, 1 << 20, 0.0, 1);
}

#[test]
fn golden_bcast_noisy_thread_matrix() {
    check_thread_matrix(
        "bcast_128r_1m_noise10_seed42.txt",
        OpKind::Bcast,
        1 << 20,
        10.0,
        42,
    );
}

#[test]
fn golden_reduce_quiet_thread_matrix() {
    check_thread_matrix("reduce_128r_1m_quiet.txt", OpKind::Reduce, 1 << 20, 0.0, 1);
}

#[test]
fn golden_reduce_noisy_thread_matrix() {
    check_thread_matrix(
        "reduce_128r_1m_noise10_seed42.txt",
        OpKind::Reduce,
        1 << 20,
        10.0,
        42,
    );
}
