//! Golden-trace determinism tests.
//!
//! The matching index and the incremental fair-share refresh are pure
//! performance rewrites: they must not move a single delivery by a single
//! nanosecond. These tests run quick-scale ADAPT broadcast and reduce on
//! fixed seeds (with noise, so preemption and deferral paths are
//! exercised) and compare per-rank completion times byte-for-byte against
//! fixtures captured *before* the rewrites under `tests/golden/`.
//!
//! Regenerate (only when a behaviour change is intended and reviewed):
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test --test golden_trace
//! ```

use adapt::collectives::{CollectiveCase, Library, NoiseScope, OpKind};
use adapt::prelude::*;
use std::fmt::Write as _;
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Serialize a run: header with aggregate counters, then one line per
/// rank with its completion time in integer nanoseconds.
fn serialize(res: &adapt::mpi::RunResult) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "events={} messages={} delivered_bytes={}",
        res.stats.events, res.stats.messages, res.stats.delivered_bytes
    )
    .unwrap();
    for (rank, t) in res.per_rank_finish.iter().enumerate() {
        writeln!(out, "{rank},{}", t.as_nanos()).unwrap();
    }
    out
}

fn run_case(op: OpKind, msg_bytes: u64, noise_percent: f64, seed: u64) -> String {
    let case = CollectiveCase {
        machine: profiles::cori(4),
        nranks: 128,
        op,
        library: Library::OmpiAdapt,
        msg_bytes,
    };
    let noise = adapt::collectives::noise_for_case(&case, NoiseScope::PerNode, noise_percent, seed);
    let world = World::cpu(case.machine.clone(), case.nranks, noise);
    let res = world.run(case.programs());
    assert!(res.audit.is_clean(), "{}", res.audit);
    serialize(&res)
}

fn check(name: &str, got: String) {
    let path = golden_dir().join(name);
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::create_dir_all(golden_dir()).unwrap();
        std::fs::write(&path, &got).unwrap();
        eprintln!("regenerated {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden fixture {}: {e}", path.display()));
    assert_eq!(
        got, want,
        "golden trace {name} diverged — per-rank completion times moved; \
         a perf-only change must be time-identical"
    );
}

#[test]
fn golden_bcast_quiet() {
    check(
        "bcast_128r_1m_quiet.txt",
        run_case(OpKind::Bcast, 1 << 20, 0.0, 1),
    );
}

#[test]
fn golden_bcast_noisy() {
    check(
        "bcast_128r_1m_noise10_seed42.txt",
        run_case(OpKind::Bcast, 1 << 20, 10.0, 42),
    );
}

#[test]
fn golden_reduce_quiet() {
    check(
        "reduce_128r_1m_quiet.txt",
        run_case(OpKind::Reduce, 1 << 20, 0.0, 1),
    );
}

#[test]
fn golden_reduce_noisy() {
    check(
        "reduce_128r_1m_noise10_seed42.txt",
        run_case(OpKind::Reduce, 1 << 20, 10.0, 42),
    );
}
