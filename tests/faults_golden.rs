//! Golden fixture for the reliability layer.
//!
//! One lossy ADAPT broadcast on a fixed seed, pinned byte-for-byte:
//! per-rank completion times *and* the recovery counters (drops,
//! retransmits, acks, duplicate suppressions). Any change to the loss
//! draw order, the RTO arithmetic, the ack path, or the retransmit
//! bookkeeping moves this fixture and must be reviewed as a behaviour
//! change, not silently absorbed.
//!
//! Regenerate (only when a behaviour change is intended and reviewed):
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test --test faults_golden
//! ```

use adapt::prelude::*;
use bytes::Bytes;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Serialize the faulted run: recovery counters first (the part this
/// fixture exists to pin), then one line per rank with its completion
/// time in integer nanoseconds.
fn serialize(res: &adapt::mpi::RunResult) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "drops={} retransmits={} acks={} dups={} backoff_ns={}",
        res.stats.drops_injected,
        res.stats.retransmits,
        res.stats.acks,
        res.stats.duplicates_suppressed,
        res.stats.backoff_time,
    )
    .unwrap();
    writeln!(
        out,
        "events={} messages={} delivered_bytes={}",
        res.stats.events, res.stats.messages, res.stats.delivered_bytes
    )
    .unwrap();
    for (rank, t) in res.per_rank_finish.iter().enumerate() {
        writeln!(out, "{rank},{}", t.as_nanos()).unwrap();
    }
    out
}

fn check(name: &str, got: String) {
    let path = golden_dir().join(name);
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::create_dir_all(golden_dir()).unwrap();
        std::fs::write(&path, &got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); run GOLDEN_REGEN=1",
            path.display()
        )
    });
    assert_eq!(
        got,
        want,
        "faulted golden trace diverged from {} — if the change is \
         intentional, regenerate with GOLDEN_REGEN=1",
        path.display()
    );
}

#[test]
fn lossy_bcast_16r_300k_seed7() {
    let machine = profiles::minicluster(2, 2, 4);
    let nranks = 16;
    let data: Vec<u8> = (0..300_000u32).map(|i| (i % 249) as u8).collect();
    let placement = Placement::block_cpu(machine.shape, nranks);
    let tree = Arc::new(topology_aware_tree(&placement, TopoTreeConfig::default()));
    let spec = BcastSpec {
        tree,
        msg_bytes: data.len() as u64,
        cfg: AdaptConfig::default().with_seg_size(32 * 1024),
        data: Some(Bytes::from(data.clone())),
    };
    let world = World::cpu(machine, nranks, ClusterNoise::silent(nranks));
    let plan = FaultPlan::lossy(7, 0.02).with_rto(Duration::from_micros(60));
    let res = world.with_faults(plan).run(spec.programs());
    assert!(res.audit.is_clean(), "{}", res.audit);
    assert!(
        res.stats.retransmits > 0,
        "the pinned run must exercise recovery"
    );
    check("faulted_bcast_16r_300k_seed7.txt", serialize(&res));
}
