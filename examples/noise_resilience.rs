//! Noise resilience: inject the paper's OS noise (10 Hz, uniform
//! durations) and watch synchronization-heavy designs amplify it while
//! ADAPT absorbs it — the experiment behind Figure 7.
//!
//! ```text
//! cargo run --release --example noise_resilience
//! ```

use adapt::prelude::*;

fn main() {
    let machine = profiles::minicluster(4, 2, 8);
    let nranks = machine.cpu_job_size();
    let msg = 4 << 20;
    let iterations = 10;

    println!(
        "Broadcast of 4 MiB on {nranks} ranks, {iterations} iterations per cell.\n\
         Noise: 10 Hz windows, uniform 0-10 ms (5%) / 0-20 ms (10%).\n"
    );
    println!(
        "{:<20} {:>12} {:>12} {:>12} {:>9} {:>9}",
        "library", "no noise", "5% noise", "10% noise", "slow@5%", "slow@10%"
    );

    for library in [
        Library::OmpiAdapt,
        Library::OmpiDefault,
        Library::IntelMpi,
        Library::CrayMpi,
        Library::Mvapich,
    ] {
        let mut cells = [0.0f64; 3];
        for (i, &noise) in [0.0, 5.0, 10.0].iter().enumerate() {
            let trial = Trial {
                case: CollectiveCase {
                    machine: machine.clone(),
                    nranks,
                    op: OpKind::Bcast,
                    library,
                    msg_bytes: msg,
                },
                noise_percent: noise,
                scope: adapt::collectives::NoiseScope::PerNode,
                iterations,
                repeats: 2,
                seed: 42,
            };
            cells[i] = adapt::collectives::run_trial(&trial).mean_us;
        }
        println!(
            "{:<20} {:>10.1}us {:>10.1}us {:>10.1}us {:>8.0}% {:>8.0}%",
            library.label(),
            cells[0],
            cells[1],
            cells[2],
            (cells[1] / cells[0] - 1.0) * 100.0,
            (cells[2] / cells[0] - 1.0) * 100.0,
        );
    }

    println!(
        "\nBlocking designs couple every rank to its parent and siblings \n\
         through rendezvous handshakes and ordering, so one rank's noise \n\
         window delays the whole tree. ADAPT keeps N sends per child and \n\
         M receives in flight: transfers already in the network progress \n\
         through the noise (DMA needs no host CPU), and the delayed rank \n\
         catches up without stalling anyone else."
    );
}
