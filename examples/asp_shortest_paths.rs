//! ASP: the all-pairs-shortest-path application of §5.3 (Table 1).
//!
//! Runs the parallel Floyd–Warshall communication schedule (one pivot-row
//! broadcast per outer iteration, rotating roots) under four libraries and
//! reports total vs communication time — then numerically verifies the
//! distributed algorithm against a sequential solve.
//!
//! ```text
//! cargo run --release --example asp_shortest_paths
//! ```

use adapt::apps::{run_asp, verify_distributed_fw, AspConfig};
use adapt::prelude::*;

fn main() {
    let machine = profiles::minicluster(4, 2, 8);
    let nranks = machine.cpu_job_size();

    println!(
        "ASP on {nranks} ranks: 1 MiB pivot-row broadcast per iteration, \n\
         40 iterations, 50 us of local relaxation per iteration.\n"
    );
    println!(
        "{:<16} {:>14} {:>18} {:>8}",
        "library", "total (ms)", "communication (ms)", "comm %"
    );

    for library in [
        Library::OmpiAdapt,
        Library::CrayMpi,
        Library::IntelMpi,
        Library::OmpiDefault,
    ] {
        let cfg = AspConfig {
            machine: machine.clone(),
            nranks,
            library,
            row_bytes: 1 << 20,
            iterations: 40,
            compute_per_iter: Duration::from_micros(50),
        };
        let r = run_asp(&cfg);
        println!(
            "{:<16} {:>12.2}ms {:>16.2}ms {:>7.0}%",
            library.label(),
            r.total_s * 1e3,
            r.communication_s * 1e3,
            r.comm_fraction() * 100.0
        );
    }

    // Numeric verification at small scale: the distributed Floyd-Warshall
    // must match the sequential solve exactly.
    let dev = verify_distributed_fw(8, 32, 2024);
    println!("\nDistributed Floyd-Warshall vs sequential: max deviation = {dev}");
    assert_eq!(dev, 0.0, "distributed result must be exact");
    println!("verified: distributed result is exact.");
}
