//! Data-parallel training: the deep-learning workload the paper's
//! introduction motivates. Compares gradient-exchange strategies per
//! training step and verifies distributed SGD numerically.
//!
//! ```text
//! cargo run --release --example data_parallel_training
//! ```

use adapt::apps::{run_training, verify_data_parallel_sgd, GradStrategy, TrainConfig};
use adapt::prelude::*;

fn main() {
    let machine = profiles::cori(8);
    let nranks = machine.cpu_job_size();
    let grad_bytes = 64 << 20; // a 16M-parameter f32 model

    println!(
        "Data-parallel training on {nranks} workers, {} MiB of gradients per step,\n\
         10 steps, 5 ms forward+backward per step.\n",
        grad_bytes >> 20
    );
    println!(
        "{:<18} {:>12} {:>12} {:>9}",
        "strategy", "total (ms)", "ms/step", "comm %"
    );
    for (label, strategy) in [
        ("ring allreduce", GradStrategy::RingAllreduce),
        ("reduce + bcast", GradStrategy::ReduceBcast),
    ] {
        let r = run_training(&TrainConfig {
            machine: machine.clone(),
            nranks,
            grad_bytes,
            steps: 10,
            compute_per_step: Duration::from_millis(5),
            strategy,
        });
        println!(
            "{label:<18} {:>10.1}ms {:>10.2}ms {:>8.0}%",
            r.total_s * 1e3,
            r.step_ms,
            r.comm_fraction * 100.0
        );
    }

    let dev = verify_data_parallel_sgd(8, 1000, 3, 0.05);
    println!("\ndistributed SGD vs sequential reference: max deviation = {dev:e}");
    assert!(dev < 1e-12);
    println!("verified: the distributed update is exact.");
}
