//! Quickstart: broadcast 4 MiB over 64 simulated ranks with ADAPT and the
//! classic baselines, and see who wins and why.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use adapt::prelude::*;

fn main() {
    // A small cluster: 4 nodes x 2 sockets x 8 cores.
    let machine = profiles::minicluster(4, 2, 8);
    let nranks = machine.cpu_job_size();
    let msg = 4 << 20;

    println!("Machine: {} nodes, {} ranks", machine.shape.nodes, nranks);
    println!("Broadcast of {} MiB:\n", msg >> 20);

    let libraries = [
        Library::OmpiAdapt,
        Library::OmpiDefaultTopo,
        Library::OmpiDefault,
        Library::IntelMpi,
        Library::Mvapich,
    ];

    let mut results: Vec<(String, f64)> = libraries
        .iter()
        .map(|&library| {
            let case = CollectiveCase {
                machine: machine.clone(),
                nranks,
                op: OpKind::Bcast,
                library,
                msg_bytes: msg,
            };
            let (us, _) = run_once(&case, 0.0, 1);
            (library.label(), us)
        })
        .collect();

    results.sort_by(|a, b| a.1.total_cmp(&b.1));
    let best = results[0].1;
    println!("{:<20} {:>12}  {:>8}", "library", "time (us)", "vs best");
    for (label, us) in &results {
        println!("{label:<20} {us:>12.1}  {:>7.2}x", us / best);
    }

    println!(
        "\nADAPT relaxes every synchronization dependency: each child's \n\
         pipeline and each segment progress independently, so the chain of \n\
         heterogeneous lanes (shm / inter-socket / NIC) runs at full speed."
    );
}
