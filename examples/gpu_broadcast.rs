//! GPU collectives: broadcast and reduce across a simulated multi-GPU
//! cluster (PSG-like: 4 K40s per node behind per-socket PCIe switches),
//! including the §4.1 explicit-CPU-staging ablation and the §4.2
//! GPU-offloaded reduction — the experiments behind Figure 11.
//!
//! ```text
//! cargo run --release --example gpu_broadcast
//! ```

use adapt::core::{topology_aware_tree, AdaptConfig, TopoTreeConfig};
use adapt::prelude::*;
use std::sync::Arc;

fn main() {
    let nodes = 4;
    let machine = profiles::psg(nodes);
    let nranks = machine.gpu_job_size();
    let msg = 32 << 20;

    println!(
        "GPU cluster: {nodes} nodes x 4 K40 = {nranks} GPUs, message {} MiB\n",
        msg >> 20
    );

    // --- Figure 11a: libraries compared ------------------------------
    println!("Broadcast:");
    for library in [
        GpuLibrary::OmpiAdapt,
        GpuLibrary::Mvapich,
        GpuLibrary::OmpiDefault,
    ] {
        let case = GpuCase {
            machine: machine.clone(),
            nranks,
            op: OpKind::Bcast,
            library,
            msg_bytes: msg,
        };
        let (us, _) = run_gpu_once(&case);
        println!("  {:<14} {:>10.1} us", library.label(), us);
    }
    println!("Reduce:");
    for library in [
        GpuLibrary::OmpiAdapt,
        GpuLibrary::Mvapich,
        GpuLibrary::OmpiDefault,
    ] {
        let case = GpuCase {
            machine: machine.clone(),
            nranks,
            op: OpKind::Reduce,
            library,
            msg_bytes: msg,
        };
        let (us, _) = run_gpu_once(&case);
        println!("  {:<14} {:>10.1} us", library.label(), us);
    }

    // --- §4.1 ablation: explicit CPU staging buffer ------------------
    let placement = Placement::block_gpu(machine.shape, nranks);
    let tree = Arc::new(topology_aware_tree(&placement, TopoTreeConfig::default()));
    let run_staging = |staging: bool| {
        let spec = GpuBcastSpec {
            placement: placement.clone(),
            tree: tree.clone(),
            msg_bytes: msg,
            cfg: AdaptConfig::default(),
            staging,
        };
        let world = World::gpu(machine.clone(), nranks, ClusterNoise::silent(nranks));
        world.run(spec.programs()).makespan.as_micros_f64()
    };
    let with = run_staging(true);
    let without = run_staging(false);
    println!("\nExplicit CPU staging buffer (ADAPT broadcast):");
    println!("  with staging    {with:>10.1} us");
    println!(
        "  without staging {without:>10.1} us   ({:.2}x slower)",
        without / with
    );
    println!(
        "\nWithout staging the node leader pulls the same segment out of \n\
         GPU memory once per outgoing lane, so NIC, inter-socket, and \n\
         neighbour traffic share one PCIe direction at a third of its \n\
         bandwidth each (Figure 6). The staged leader reads once, then \n\
         feeds every lane from host memory while flushing its own GPU \n\
         copy asynchronously."
    );
}
